//! The declarative fault-schedule DSL.
//!
//! A [`FaultSchedule`] is an ordered list of timed [`FaultEvent`]s — link
//! flaps, loss ramps, adversarial channel impairments (corruption,
//! duplication, reordering), multi-link partitions, router crashes with
//! state loss, restarts, membership churn, bandwidth caps
//! ([`FaultEvent::Bandwidth`] — congestion as a fault), and traffic
//! bursts ([`FaultEvent::Burst`] — the overload workloads that make a
//! cap bite). Schedules are pure data:
//! they serialize to a line-oriented text form with an exact round trip
//! (loss and impairment probabilities are carried in per-mille, never
//! floating point), which is what makes replay artifacts byte-identical,
//! and they compile onto the simulator's existing scripted event
//! machinery via [`FaultSchedule::install`].
//!
//! "RP failure" and "unicast route change" from the fault taxonomy are
//! expressed through the same primitives: crashing the router that holds
//! the RP (or core) *is* the RP-failure fault, and a link down/up pair
//! under an adaptive unicast substrate *is* a route change. A
//! [`FaultEvent::Partition`] cuts a set of links at one instant — the
//! atomic multi-link failure that separates the topology into islands —
//! and its paired [`FaultEvent::Heal`] restores every cut link *and*
//! resets their channel models to clean in the same tick.

use igmp::HostNode;
use netsim::{ChannelModel, LinkCapacity, LinkId, NodeIdx, SimTime, World};
use wire::Group;

/// One fault, applied at a scheduled instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Take a router-router link down.
    LinkDown(usize),
    /// Bring a link back up.
    LinkUp(usize),
    /// Set a link's per-receiver drop probability, in per-mille
    /// (`0..=1000`). Integer so the text form round-trips exactly.
    LinkLoss(usize, u32),
    /// Set a link's per-copy single-bit corruption probability, in
    /// per-mille. Corrupted control frames fail the wire checksum and
    /// are dropped at decode; corrupted data payloads pass through
    /// (the data plane carries no payload checksum).
    CorruptLink(usize, u32),
    /// Set a link's per-receiver duplication probability, in per-mille.
    /// A duplicated transmission delivers two independent copies.
    DuplicateLink(usize, u32),
    /// Set a link's per-copy reorder probability (per-mille) and the
    /// extra delay jitter (ticks) a reordered copy is held for.
    ReorderLink(usize, u32, u64),
    /// Cut a set of links atomically at one instant (multi-link
    /// failure separating the topology into islands).
    Partition(Vec<usize>),
    /// Restore a set of links atomically, and reset each link's
    /// channel model to clean in the same tick.
    Heal(Vec<usize>),
    /// Crash a router with total state loss ([`World::crash_node`]).
    /// Crashing the RP / core router is the RP-failure fault class.
    CrashRouter(u32),
    /// Power a crashed router back up ([`World::restart_node`]).
    RestartRouter(u32),
    /// Host slot `k` joins the group (membership churn).
    Join(u32),
    /// Host slot `k` leaves the group (silent IGMPv1 leave).
    Leave(u32),
    /// Cap a link's per-direction bandwidth: `(link, rate, queue, prio)`
    /// with `rate` in bytes/tick, `queue` the transmit-queue bound in
    /// bytes, and `prio` (0/1) whether control traffic bypasses the
    /// queue. The ECN mark threshold is derived as `queue / 2`. `rate`
    /// 0 restores the unlimited default — the heal form.
    Bandwidth(usize, u64, u64, u32),
    /// Host slot `k` sends a burst of `count` data packets, `gap` ticks
    /// apart — overload *traffic*, not a fault proper, so it never
    /// emits a fault marker and needs no heal.
    Burst(u32, u32, u64),
}

impl FaultEvent {
    fn to_line(&self) -> String {
        match self {
            FaultEvent::LinkDown(l) => format!("link-down {l}"),
            FaultEvent::LinkUp(l) => format!("link-up {l}"),
            FaultEvent::LinkLoss(l, pm) => format!("link-loss {l} {pm}"),
            FaultEvent::CorruptLink(l, pm) => format!("corrupt {l} {pm}"),
            FaultEvent::DuplicateLink(l, pm) => format!("duplicate {l} {pm}"),
            FaultEvent::ReorderLink(l, pm, jitter) => format!("reorder {l} {pm} {jitter}"),
            FaultEvent::Partition(ls) => format!("partition {}", join(ls)),
            FaultEvent::Heal(ls) => format!("heal {}", join(ls)),
            FaultEvent::CrashRouter(r) => format!("crash {r}"),
            FaultEvent::RestartRouter(r) => format!("restart {r}"),
            FaultEvent::Join(h) => format!("join {h}"),
            FaultEvent::Leave(h) => format!("leave {h}"),
            FaultEvent::Bandwidth(l, rate, queue, prio) => {
                format!("bandwidth {l} {rate} {queue} {prio}")
            }
            FaultEvent::Burst(h, count, gap) => format!("burst {h} {count} {gap}"),
        }
    }
}

/// Space-join a link list for the text form.
fn join(ls: &[usize]) -> String {
    ls.iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(" ")
}

/// A deterministic, serializable fault schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// `(time, fault)` pairs. [`FaultSchedule::install`] sorts stably by
    /// time, so same-instant events keep their listed order.
    pub events: Vec<(u64, FaultEvent)>,
}

impl FaultSchedule {
    /// Append an event.
    pub fn push(&mut self, at: u64, ev: FaultEvent) {
        self.events.push((at, ev));
    }

    /// The largest scheduled time (0 for an empty schedule).
    pub fn span(&self) -> u64 {
        self.events.iter().map(|&(t, _)| t).max().unwrap_or(0)
    }

    /// Serialize to the line-oriented text form:
    ///
    /// ```text
    /// 250 link-down 0
    /// 400 link-loss 2 500
    /// 500 corrupt 1 250
    /// 600 partition 0 3
    /// 700 crash 3
    /// ```
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for (t, ev) in &self.events {
            s.push_str(&format!("{t} {}\n", ev.to_line()));
        }
        s
    }

    /// Parse the text form back. Blank lines and `#` comments are skipped.
    /// `from_text(s).to_text()` reproduces `s` up to those skipped lines —
    /// the exact round trip replay artifacts depend on.
    pub fn from_text(text: &str) -> Result<FaultSchedule, String> {
        let mut events = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |what: &str| format!("line {}: {what}: {line:?}", ln + 1);
            let mut parts = line.split_whitespace();
            let at: u64 = parts
                .next()
                .ok_or_else(|| err("missing time"))?
                .parse()
                .map_err(|_| err("bad time"))?;
            let kind = parts.next().ok_or_else(|| err("missing fault kind"))?;
            let args: Vec<&str> = parts.collect();
            let num = |i: usize, what: &str| -> Result<u64, String> {
                args.get(i)
                    .ok_or_else(|| err(what))?
                    .parse::<u64>()
                    .map_err(|_| err(what))
            };
            let pm_at = |i: usize| -> Result<u32, String> {
                let pm = num(i, "missing per-mille")?;
                if pm > 1000 {
                    return Err(err("per-mille out of range"));
                }
                Ok(pm as u32)
            };
            let ev = match kind {
                "link-down" => FaultEvent::LinkDown(num(0, "missing link")? as usize),
                "link-up" => FaultEvent::LinkUp(num(0, "missing link")? as usize),
                "link-loss" => FaultEvent::LinkLoss(num(0, "missing link")? as usize, pm_at(1)?),
                "corrupt" => FaultEvent::CorruptLink(num(0, "missing link")? as usize, pm_at(1)?),
                "duplicate" => {
                    FaultEvent::DuplicateLink(num(0, "missing link")? as usize, pm_at(1)?)
                }
                "reorder" => FaultEvent::ReorderLink(
                    num(0, "missing link")? as usize,
                    pm_at(1)?,
                    num(2, "missing jitter")?,
                ),
                "partition" | "heal" => {
                    if args.is_empty() {
                        return Err(err("missing links"));
                    }
                    let mut ls = Vec::with_capacity(args.len());
                    for i in 0..args.len() {
                        ls.push(num(i, "bad link")? as usize);
                    }
                    if kind == "partition" {
                        FaultEvent::Partition(ls)
                    } else {
                        FaultEvent::Heal(ls)
                    }
                }
                "crash" => FaultEvent::CrashRouter(num(0, "missing router")? as u32),
                "restart" => FaultEvent::RestartRouter(num(0, "missing router")? as u32),
                "join" => FaultEvent::Join(num(0, "missing host")? as u32),
                "leave" => FaultEvent::Leave(num(0, "missing host")? as u32),
                "bandwidth" => {
                    let prio = num(3, "missing prio")?;
                    if prio > 1 {
                        return Err(err("prio must be 0 or 1"));
                    }
                    FaultEvent::Bandwidth(
                        num(0, "missing link")? as usize,
                        num(1, "missing rate")?,
                        num(2, "missing queue")?,
                        prio as u32,
                    )
                }
                "burst" => FaultEvent::Burst(
                    num(0, "missing host")? as u32,
                    num(1, "missing count")? as u32,
                    num(2, "missing gap")?,
                ),
                _ => return Err(err("unknown fault kind")),
            };
            let expected = match &ev {
                FaultEvent::LinkDown(_)
                | FaultEvent::LinkUp(_)
                | FaultEvent::CrashRouter(_)
                | FaultEvent::RestartRouter(_)
                | FaultEvent::Join(_)
                | FaultEvent::Leave(_) => 1,
                FaultEvent::LinkLoss(..)
                | FaultEvent::CorruptLink(..)
                | FaultEvent::DuplicateLink(..) => 2,
                FaultEvent::ReorderLink(..) | FaultEvent::Burst(..) => 3,
                FaultEvent::Bandwidth(..) => 4,
                FaultEvent::Partition(ls) | FaultEvent::Heal(ls) => ls.len(),
            };
            if args.len() != expected {
                return Err(err("trailing tokens"));
            }
            events.push((at, ev));
        }
        Ok(FaultSchedule { events })
    }

    /// The set of host slots whose *last* membership event is a join —
    /// i.e. the members expected at the end of the schedule (the delivery
    /// oracle's member set).
    pub fn final_members(&self, host_count: usize) -> Vec<u32> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut joined = vec![false; host_count];
        for (_, ev) in &sorted {
            match ev {
                FaultEvent::Join(h) => {
                    if let Some(j) = joined.get_mut(*h as usize) {
                        *j = true;
                    }
                }
                FaultEvent::Leave(h) => {
                    if let Some(j) = joined.get_mut(*h as usize) {
                        *j = false;
                    }
                }
                _ => {}
            }
        }
        (0..host_count as u32)
            .filter(|&h| joined[h as usize])
            .collect()
    }

    // -----------------------------------------------------------------
    // Mutation operators (coverage-guided search)
    //
    // All pure and index/time-explicit: the search layer owns the RNG,
    // so the operators themselves stay trivially deterministic and
    // testable. Every mutated schedule must pass through
    // [`FaultSchedule::normalize`] before running — the operators make
    // no attempt to keep times, indices, or the heal discipline valid.
    // -----------------------------------------------------------------

    /// The schedule without event `idx` (clamped; no-op on empty).
    pub fn with_deleted(&self, idx: usize) -> FaultSchedule {
        let mut s = self.clone();
        if !s.events.is_empty() {
            s.events.remove(idx.min(s.events.len() - 1));
        }
        s
    }

    /// The schedule with event `idx` moved to time `at`.
    pub fn with_retimed(&self, idx: usize, at: u64) -> FaultSchedule {
        let mut s = self.clone();
        if let Some(e) = s.events.get_mut(idx) {
            e.0 = at;
        }
        s
    }

    /// The schedule with a copy of event `idx` appended at time `at`.
    pub fn with_duplicated(&self, idx: usize, at: u64) -> FaultSchedule {
        let mut s = self.clone();
        if let Some((_, ev)) = self.events.get(idx) {
            s.events.push((at, ev.clone()));
        }
        s
    }

    /// The schedule with every `donor` event in `[t0, t1)` spliced in.
    pub fn spliced(&self, donor: &FaultSchedule, t0: u64, t1: u64) -> FaultSchedule {
        let mut s = self.clone();
        for (t, ev) in &donor.events {
            if (t0..t1).contains(t) {
                s.events.push((*t, ev.clone()));
            }
        }
        s
    }

    /// Single-point crossover: `self`'s events before `cut` plus
    /// `donor`'s events at or after it.
    pub fn crossover(&self, donor: &FaultSchedule, cut: u64) -> FaultSchedule {
        let mut s = FaultSchedule::default();
        for (t, ev) in &self.events {
            if *t < cut {
                s.events.push((*t, ev.clone()));
            }
        }
        for (t, ev) in &donor.events {
            if *t >= cut {
                s.events.push((*t, ev.clone()));
            }
        }
        s
    }

    /// Repair an arbitrary (e.g. mutated) schedule into one the oracle
    /// layer is sound for, without changing what the schedule *means*
    /// where it is already valid:
    ///
    /// * link / router / host indices are wrapped into range (host
    ///   slots into the member range `1..hosts` — slot 0 stays the
    ///   sender, so burst traffic never perturbs the probe train's
    ///   sequence numbers), per-mille fields clamped to 1000, jitter
    ///   to 60, burst counts to 32 and burst gaps to 16;
    /// * fault events are clamped into the `1..=2900` fault window and
    ///   membership events to the windows the explorer timeline allows
    ///   (joins by 2900, leaves by 2970), so no fault overlaps the
    ///   probe train the delivery oracle measures;
    /// * the **heal discipline** is re-established: any link left
    ///   down, lossy, impaired, or bandwidth-capped and any router left
    ///   crashed at the end of the fault window gets an explicit heal
    ///   event at 2950, in deterministic (link, then router) order;
    /// * empty partition/heal link sets (a mutation artifact the text
    ///   form cannot even express) are dropped;
    /// * events are stably sorted by time, so the result's text form is
    ///   canonical.
    ///
    /// Normalization is idempotent: `normalize(normalize(s)) ==
    /// normalize(s)` for any `s` (asserted in tests).
    pub fn normalize(&self, links: usize, routers: usize, hosts: usize) -> FaultSchedule {
        /// Faults land in the window the explorer's oracles assume.
        /// `FAULT_MAX == HEAL_AT` so already-appended heal events
        /// survive re-normalization unchanged (idempotence).
        const FAULT_MIN: u64 = 1;
        const FAULT_MAX: u64 = 2950;
        const HEAL_AT: u64 = 2950;
        const JOIN_MAX: u64 = 2900;
        const LEAVE_MAX: u64 = 2970;
        let wrap = |i: usize, n: usize| if n == 0 { 0 } else { i % n };
        let member = |h: u32| -> u32 {
            if hosts <= 1 {
                0
            } else {
                1 + (h.max(1) - 1) % (hosts as u32 - 1)
            }
        };
        let mut events: Vec<(u64, FaultEvent)> = Vec::with_capacity(self.events.len());
        for (t, ev) in &self.events {
            let fault_t = (*t).clamp(FAULT_MIN, FAULT_MAX);
            let (t, ev) = match ev {
                FaultEvent::LinkDown(l) => (fault_t, FaultEvent::LinkDown(wrap(*l, links))),
                FaultEvent::LinkUp(l) => (fault_t, FaultEvent::LinkUp(wrap(*l, links))),
                FaultEvent::LinkLoss(l, pm) => (
                    fault_t,
                    FaultEvent::LinkLoss(wrap(*l, links), (*pm).min(1000)),
                ),
                FaultEvent::CorruptLink(l, pm) => (
                    fault_t,
                    FaultEvent::CorruptLink(wrap(*l, links), (*pm).min(1000)),
                ),
                FaultEvent::DuplicateLink(l, pm) => (
                    fault_t,
                    FaultEvent::DuplicateLink(wrap(*l, links), (*pm).min(1000)),
                ),
                FaultEvent::ReorderLink(l, pm, jitter) => (
                    fault_t,
                    FaultEvent::ReorderLink(wrap(*l, links), (*pm).min(1000), (*jitter).min(60)),
                ),
                FaultEvent::Partition(ls) | FaultEvent::Heal(ls) => {
                    let mut wrapped: Vec<usize> = ls.iter().map(|&l| wrap(l, links)).collect();
                    wrapped.sort_unstable();
                    wrapped.dedup();
                    if wrapped.is_empty() {
                        continue; // unexpressible in the text form
                    }
                    if matches!(ev, FaultEvent::Partition(_)) {
                        (fault_t, FaultEvent::Partition(wrapped))
                    } else {
                        (fault_t, FaultEvent::Heal(wrapped))
                    }
                }
                FaultEvent::CrashRouter(r) => (
                    fault_t,
                    FaultEvent::CrashRouter(wrap(*r as usize, routers) as u32),
                ),
                FaultEvent::RestartRouter(r) => (
                    fault_t,
                    FaultEvent::RestartRouter(wrap(*r as usize, routers) as u32),
                ),
                FaultEvent::Join(h) => (
                    (*t).clamp(FAULT_MIN, JOIN_MAX),
                    FaultEvent::Join(member(*h)),
                ),
                FaultEvent::Leave(h) => (
                    (*t).clamp(FAULT_MIN, LEAVE_MAX),
                    FaultEvent::Leave(member(*h)),
                ),
                FaultEvent::Bandwidth(l, rate, queue, prio) => (
                    fault_t,
                    FaultEvent::Bandwidth(wrap(*l, links), *rate, *queue, (*prio).min(1)),
                ),
                FaultEvent::Burst(h, count, gap) => (
                    fault_t,
                    FaultEvent::Burst(member(*h), (*count).min(32), (*gap).min(16)),
                ),
            };
            events.push((t, ev));
        }
        events.sort_by_key(|&(t, _)| t);

        // Replay the fault effects to find what is still broken at the
        // end of the window, then heal it explicitly.
        let mut link_down = vec![false; links];
        let mut link_lossy = vec![false; links];
        let mut link_dirty = vec![false; links]; // corrupt/duplicate/reorder
        let mut link_capped = vec![false; links]; // bandwidth caps
        let mut crashed = vec![false; routers];
        for (_, ev) in &events {
            match ev {
                FaultEvent::LinkDown(l) => link_down[*l] = true,
                FaultEvent::LinkUp(l) => link_down[*l] = false,
                FaultEvent::LinkLoss(l, pm) => link_lossy[*l] = *pm != 0,
                FaultEvent::CorruptLink(l, pm)
                | FaultEvent::DuplicateLink(l, pm)
                | FaultEvent::ReorderLink(l, pm, _) => {
                    if *pm != 0 {
                        link_dirty[*l] = true;
                    }
                }
                FaultEvent::Partition(ls) => {
                    for l in ls {
                        link_down[*l] = true;
                    }
                }
                FaultEvent::Heal(ls) => {
                    for l in ls {
                        link_down[*l] = false;
                        link_dirty[*l] = false;
                    }
                }
                FaultEvent::CrashRouter(r) => crashed[*r as usize] = true,
                FaultEvent::RestartRouter(r) => crashed[*r as usize] = false,
                FaultEvent::Bandwidth(l, rate, ..) => link_capped[*l] = *rate != 0,
                FaultEvent::Join(_) | FaultEvent::Leave(_) | FaultEvent::Burst(..) => {}
            }
        }
        for l in 0..links {
            if link_down[l] {
                events.push((HEAL_AT, FaultEvent::LinkUp(l)));
            }
            if link_lossy[l] {
                events.push((HEAL_AT, FaultEvent::LinkLoss(l, 0)));
            }
            if link_dirty[l] {
                // One atomic heal resets the whole channel model.
                events.push((HEAL_AT, FaultEvent::Heal(vec![l])));
            }
            if link_capped[l] {
                // Rate 0 is the bandwidth heal form: restore unlimited.
                events.push((HEAL_AT, FaultEvent::Bandwidth(l, 0, 0, 1)));
            }
        }
        for (r, down) in crashed.iter().enumerate() {
            if *down {
                events.push((HEAL_AT, FaultEvent::RestartRouter(r as u32)));
            }
        }
        events.sort_by_key(|&(t, _)| t);
        FaultSchedule { events }
    }

    /// Compile the schedule onto `world`'s scripted-event machinery.
    /// `hosts[k]` is the world node of host slot `k`; membership events
    /// target `group`. Events are installed in stable time order.
    ///
    /// Link, channel, partition, crash, and restart events also emit one
    /// [`telemetry::Event::Fault`] marker (no-op without a sink), so
    /// metrics sinks can measure post-fault reconvergence windows. Only
    /// the first fault at each instant is marked — same-tick siblings
    /// would open zero-width windows.
    pub fn install(&self, world: &mut World, hosts: &[NodeIdx], group: Group) {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut last_marked = None;
        for (at, ev) in sorted {
            // A burst expands into its individual sends here: each is an
            // ordinary scripted data transmission, not a fault.
            if let FaultEvent::Burst(h, count, gap) = ev {
                let idx = hosts[h as usize];
                for k in 0..u64::from(count) {
                    world.at(SimTime(at + k * gap), move |w| {
                        w.call_node(idx, |n, ctx| {
                            n.as_any_mut()
                                .downcast_mut::<HostNode>()
                                .expect("host slot is a HostNode")
                                .send_data(ctx, group);
                        });
                    });
                }
                continue;
            }
            let is_fault = !matches!(ev, FaultEvent::Join(_) | FaultEvent::Leave(_));
            let mark = is_fault && last_marked != Some(at);
            if mark {
                last_marked = Some(at);
            }
            let hosts = hosts.to_vec();
            world.at(SimTime(at), move |w| apply(w, ev, &hosts, group, mark));
        }
    }
}

/// The world node a fault marker is attributed to: the crashed or
/// restarted router itself; for link and channel faults, router 0 as a
/// deterministic stand-in (the marker's `desc` names the link).
fn fault_node(ev: &FaultEvent) -> NodeIdx {
    match ev {
        FaultEvent::CrashRouter(r) | FaultEvent::RestartRouter(r) => NodeIdx(*r as usize),
        _ => NodeIdx(0),
    }
}

/// Apply one fault to the world, emitting its telemetry marker first so
/// flight recorders show the fault before its consequences.
fn apply(w: &mut World, ev: FaultEvent, hosts: &[NodeIdx], group: Group, mark: bool) {
    if mark {
        w.emit_event(
            fault_node(&ev),
            telemetry::Event::Fault { desc: ev.to_line() },
        );
    }
    match ev {
        FaultEvent::LinkDown(l) => w.set_link_up(LinkId(l), false),
        FaultEvent::LinkUp(l) => w.set_link_up(LinkId(l), true),
        FaultEvent::LinkLoss(l, pm) => w.set_link_loss(LinkId(l), f64::from(pm.min(1000)) / 1000.0),
        FaultEvent::CorruptLink(l, pm) => {
            let mut c = w.link(LinkId(l)).channel;
            c.corrupt_pm = pm;
            w.set_channel_model(LinkId(l), c);
        }
        FaultEvent::DuplicateLink(l, pm) => {
            let mut c = w.link(LinkId(l)).channel;
            c.duplicate_pm = pm;
            w.set_channel_model(LinkId(l), c);
        }
        FaultEvent::ReorderLink(l, pm, jitter) => {
            let mut c = w.link(LinkId(l)).channel;
            c.reorder_pm = pm;
            c.jitter = jitter;
            w.set_channel_model(LinkId(l), c);
        }
        FaultEvent::Partition(ls) => {
            for l in ls {
                w.set_link_up(LinkId(l), false);
            }
        }
        FaultEvent::Heal(ls) => {
            for l in ls {
                w.set_link_up(LinkId(l), true);
                w.set_channel_model(LinkId(l), ChannelModel::CLEAN);
            }
        }
        FaultEvent::CrashRouter(r) => w.crash_node(NodeIdx(r as usize)),
        FaultEvent::RestartRouter(r) => w.restart_node(NodeIdx(r as usize)),
        FaultEvent::Join(h) => {
            let idx = hosts[h as usize];
            w.call_node(idx, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host slot is a HostNode")
                    .join(ctx, group);
            });
        }
        FaultEvent::Leave(h) => {
            let idx = hosts[h as usize];
            w.node_mut::<HostNode>(idx).leave(group);
        }
        FaultEvent::Bandwidth(l, rate, queue, prio) => {
            let cap = if rate == 0 {
                LinkCapacity::UNLIMITED
            } else {
                LinkCapacity {
                    bytes_per_tick: rate,
                    queue_bytes: queue,
                    ecn_bytes: queue / 2,
                    ctrl_priority: prio != 0,
                }
            };
            w.set_link_capacity(LinkId(l), cap);
        }
        FaultEvent::Burst(..) => unreachable!("bursts expand in install"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultSchedule {
        let mut s = FaultSchedule::default();
        s.push(30, FaultEvent::Join(1));
        s.push(250, FaultEvent::LinkDown(0));
        s.push(400, FaultEvent::LinkLoss(2, 500));
        s.push(450, FaultEvent::CorruptLink(1, 250));
        s.push(470, FaultEvent::DuplicateLink(0, 100));
        s.push(490, FaultEvent::ReorderLink(2, 300, 25));
        s.push(520, FaultEvent::Bandwidth(1, 4, 64, 1));
        s.push(560, FaultEvent::Burst(2, 8, 5));
        s.push(600, FaultEvent::Partition(vec![0, 2, 3]));
        s.push(700, FaultEvent::CrashRouter(3));
        s.push(900, FaultEvent::RestartRouter(3));
        s.push(940, FaultEvent::Heal(vec![0, 2, 3]));
        s.push(950, FaultEvent::LinkUp(0));
        s.push(960, FaultEvent::LinkLoss(2, 0));
        s.push(1000, FaultEvent::Leave(1));
        s
    }

    #[test]
    fn text_round_trip_is_exact() {
        let s = sample();
        let text = s.to_text();
        let back = FaultSchedule::from_text(&text).expect("parse");
        assert_eq!(back, s);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn channel_fault_lines_render_as_specified() {
        assert_eq!(FaultEvent::CorruptLink(1, 250).to_line(), "corrupt 1 250");
        assert_eq!(
            FaultEvent::DuplicateLink(0, 100).to_line(),
            "duplicate 0 100"
        );
        assert_eq!(
            FaultEvent::ReorderLink(2, 300, 25).to_line(),
            "reorder 2 300 25"
        );
        assert_eq!(
            FaultEvent::Partition(vec![0, 2, 3]).to_line(),
            "partition 0 2 3"
        );
        assert_eq!(FaultEvent::Heal(vec![4]).to_line(), "heal 4");
        assert_eq!(
            FaultEvent::Bandwidth(1, 4, 64, 1).to_line(),
            "bandwidth 1 4 64 1"
        );
        assert_eq!(FaultEvent::Burst(2, 8, 5).to_line(), "burst 2 8 5");
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# a comment\n\n10 crash 2\n";
        let s = FaultSchedule::from_text(text).expect("parse");
        assert_eq!(s.events, vec![(10, FaultEvent::CrashRouter(2))]);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(FaultSchedule::from_text("abc crash 2").is_err());
        assert!(FaultSchedule::from_text("10 explode 2").is_err());
        assert!(FaultSchedule::from_text("10 link-loss 2 1001").is_err());
        assert!(FaultSchedule::from_text("10 crash 2 junk").is_err());
        assert!(FaultSchedule::from_text("10 crash").is_err());
        // Channel and partition fault arity / range errors.
        assert!(FaultSchedule::from_text("10 corrupt 0 1001").is_err());
        assert!(FaultSchedule::from_text("10 corrupt 0").is_err());
        assert!(FaultSchedule::from_text("10 duplicate 0 500 junk").is_err());
        assert!(FaultSchedule::from_text("10 reorder 1 100").is_err());
        assert!(FaultSchedule::from_text("10 partition").is_err());
        assert!(FaultSchedule::from_text("10 partition 0 x").is_err());
        assert!(FaultSchedule::from_text("10 heal").is_err());
        // Bandwidth / burst arity and range errors.
        assert!(FaultSchedule::from_text("10 bandwidth 0 4 64").is_err());
        assert!(FaultSchedule::from_text("10 bandwidth 0 4 64 2").is_err());
        assert!(FaultSchedule::from_text("10 bandwidth 0 4 64 1 junk").is_err());
        assert!(FaultSchedule::from_text("10 burst 1 8").is_err());
        assert!(FaultSchedule::from_text("10 burst 1 8 5 junk").is_err());
    }

    #[test]
    fn final_members_follows_last_event() {
        let mut s = sample(); // join 1 ... leave 1
        assert_eq!(s.final_members(3), Vec::<u32>::new());
        s.push(1200, FaultEvent::Join(1));
        s.push(1300, FaultEvent::Join(2));
        assert_eq!(s.final_members(3), vec![1, 2]);
    }

    #[test]
    fn span_is_last_time() {
        assert_eq!(sample().span(), 1000);
        assert_eq!(FaultSchedule::default().span(), 0);
    }

    #[test]
    fn mutation_operators_are_pure_and_clamped() {
        let s = sample();
        let n = s.events.len();
        assert_eq!(s.with_deleted(1).events.len(), n - 1);
        assert!(!s
            .with_deleted(1)
            .events
            .contains(&(250, FaultEvent::LinkDown(0))));
        // Out-of-range delete clamps to the last event.
        assert_eq!(s.with_deleted(999).events.len(), n - 1);
        assert_eq!(FaultSchedule::default().with_deleted(0).events.len(), 0);

        let r = s.with_retimed(1, 777);
        assert_eq!(r.events[1], (777, FaultEvent::LinkDown(0)));
        assert_eq!(s.with_retimed(999, 777), s, "oob retime is a no-op");

        let d = s.with_duplicated(1, 555);
        assert_eq!(d.events.len(), n + 1);
        assert_eq!(d.events[n], (555, FaultEvent::LinkDown(0)));

        let donor = sample();
        let sp = s.spliced(&donor, 400, 500);
        assert_eq!(sp.events.len(), n + 4, "four donor events in [400,500)");

        let x = s.crossover(&donor, 500);
        // Events < 500 from s plus events >= 500 from donor == sample again
        // (same parents), so crossover with self is identity here.
        assert_eq!(x.events.len(), n);
    }

    #[test]
    fn normalize_wraps_clamps_and_heals() {
        let mut s = FaultSchedule::default();
        s.push(0, FaultEvent::Join(9)); // slot wraps into member range
        s.push(5000, FaultEvent::LinkDown(7)); // link wraps, time clamps
        s.push(100, FaultEvent::LinkLoss(1, 5000)); // pm clamps, never healed
        s.push(200, FaultEvent::CrashRouter(11)); // router wraps, never restarted
        s.push(300, FaultEvent::ReorderLink(0, 100, 999)); // jitter clamps
        s.push(400, FaultEvent::Partition(vec![])); // unexpressible: dropped
        s.push(500, FaultEvent::Bandwidth(6, 3, 48, 9)); // link wraps, prio clamps, never healed
        s.push(600, FaultEvent::Burst(0, 500, 99)); // host wraps off sender, count+gap clamp
        let n = s.normalize(4, 5, 3);

        // Every event is in range and the text form round-trips.
        let text = n.to_text();
        assert_eq!(FaultSchedule::from_text(&text).unwrap().to_text(), text);
        for (t, ev) in &n.events {
            assert!(*t >= 1 && *t <= 2970, "time {t} out of window");
            match ev {
                FaultEvent::Join(h) | FaultEvent::Leave(h) => {
                    assert!((1..3).contains(h), "host slot {h}")
                }
                FaultEvent::CrashRouter(r) | FaultEvent::RestartRouter(r) => {
                    assert!(*r < 5)
                }
                FaultEvent::ReorderLink(_, _, j) => assert!(*j <= 60),
                FaultEvent::Bandwidth(l, _, _, p) => {
                    assert!(*l < 4 && *p <= 1)
                }
                FaultEvent::Burst(h, c, g) => {
                    assert!((1..3).contains(h), "burst host {h} must be a member slot");
                    assert!(*c <= 32 && *g <= 16);
                }
                _ => {}
            }
        }
        // Heal discipline: the down link is up again, loss is zeroed,
        // the dirty channel healed, the crashed router restarted.
        assert!(n.events.contains(&(2950, FaultEvent::LinkUp(3))));
        assert!(n.events.contains(&(2950, FaultEvent::LinkLoss(1, 0))));
        assert!(n.events.contains(&(2950, FaultEvent::Heal(vec![0]))));
        assert!(n
            .events
            .contains(&(2950, FaultEvent::Bandwidth(2, 0, 0, 1))));
        assert!(n.events.contains(&(2950, FaultEvent::RestartRouter(1))));
        assert!(!n
            .events
            .iter()
            .any(|(_, e)| matches!(e, FaultEvent::Partition(ls) if ls.is_empty())));
    }

    #[test]
    fn normalize_is_idempotent() {
        for s in [
            sample(),
            {
                let mut s = FaultSchedule::default();
                s.push(9999, FaultEvent::Partition(vec![0, 1, 9]));
                s.push(10, FaultEvent::CrashRouter(2));
                s.push(2960, FaultEvent::Leave(1));
                s
            },
            FaultSchedule::default(),
        ] {
            let once = s.normalize(4, 5, 3);
            let twice = once.normalize(4, 5, 3);
            assert_eq!(once, twice, "normalize must be idempotent");
        }
    }

    #[test]
    fn normalize_preserves_already_sound_schedules() {
        // A generator-shaped schedule (faults healed, members joined)
        // keeps its semantics: same events, stably time-sorted.
        let mut s = FaultSchedule::default();
        s.push(30, FaultEvent::Join(1));
        s.push(250, FaultEvent::LinkDown(0));
        s.push(600, FaultEvent::LinkUp(0));
        let n = s.normalize(4, 4, 3);
        assert_eq!(n.events, s.events, "sound schedules pass through");
    }
}
