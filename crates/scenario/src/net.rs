//! Building a protocol network a fault schedule can run against.
//!
//! The same topology + rendezvous-point assignment + host placement is
//! instantiated for any of the three protocols and any unicast substrate,
//! so the explorer can hold the schedule fixed and vary only the protocol
//! under test.

use cbt::{CbtConfig, CbtEngine, CbtRouter};
use dvmrp::{DvmrpConfig, DvmrpEngine, DvmrpRouter};
use graph::{Graph, NodeId};
use igmp::{HostNode, PopulationNode};
use netsim::{host_addr, router_addr, Duration, IfaceId, NodeIdx, SimTime, Topology, World};
use pim::{Engine, PimConfig, PimRouter};
use telemetry::SharedSink;
use unicast::dv::{DvConfig, DvEngine};
use unicast::ls::{LsConfig, LsEngine};
use unicast::OracleRib;
use wire::{Addr, Group};

/// The multicast protocol under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// PIM sparse mode (the paper's architecture).
    Pim,
    /// DVMRP dense mode (broadcast-and-prune baseline).
    Dvmrp,
    /// Core-based trees (shared-tree baseline).
    Cbt,
}

impl Protocol {
    /// All three protocols, in canonical order.
    pub const ALL: [Protocol; 3] = [Protocol::Pim, Protocol::Dvmrp, Protocol::Cbt];

    /// Stable name used in replay artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Pim => "pim",
            Protocol::Dvmrp => "dvmrp",
            Protocol::Cbt => "cbt",
        }
    }

    /// Parse an artifact name back.
    pub fn from_name(s: &str) -> Option<Protocol> {
        Protocol::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// The unicast substrate the routers run underneath the multicast engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Substrate {
    /// Static tables from global knowledge (deterministic, zero chatter —
    /// what the explorer uses for byte-identical trace comparison).
    Oracle,
    /// RIP-like distance vector.
    DistanceVector,
    /// OSPF-like link state.
    LinkState,
}

/// One router-router interface, as the oracles see it.
#[derive(Clone, Copy, Debug)]
pub struct IfacePeer {
    /// The interface id on this router.
    pub iface: IfaceId,
    /// The neighbor router's graph node.
    pub neighbor: NodeId,
    /// The neighbor router's address.
    pub neighbor_addr: Addr,
}

/// A built scenario network: world plus the side tables the oracle layer
/// needs to interpret router state.
pub struct ScenarioNet {
    /// The simulation world.
    pub world: World,
    /// `(world node, address)` of host slot `k`, in `host_routers` order.
    pub hosts: Vec<(NodeIdx, Addr)>,
    /// Which protocol the routers run.
    pub protocol: Protocol,
    /// The group all membership and data traffic targets.
    pub group: Group,
    /// Number of routers (world nodes `0..router_count` are routers).
    pub router_count: usize,
    /// The RP (PIM) / core (CBT) router. DVMRP has no rendezvous point.
    pub rendezvous: NodeId,
    /// The router each host slot sits behind.
    pub host_routers: Vec<NodeId>,
    /// Router-router interface map per router, indexed by graph node.
    pub peers: Vec<Vec<IfacePeer>>,
    /// Aggregate member population behind each host slot, in
    /// `host_routers` order. `1` = an explicit [`HostNode`] (the classic
    /// scenarios); `> 1` = a [`PopulationNode`] holding that many
    /// members behind one LAN.
    pub populations: Vec<u64>,
}

/// Build a network of `protocol` routers over `g` with a host behind each
/// router in `host_routers`, the rendezvous point (RP or core) at
/// `rendezvous`, and the chosen unicast substrate.
pub fn build_net(
    g: &Graph,
    protocol: Protocol,
    substrate: Substrate,
    group: Group,
    rendezvous: NodeId,
    host_routers: &[NodeId],
    seed: u64,
) -> ScenarioNet {
    let ones = vec![1; host_routers.len()];
    build_net_aggregate(
        g,
        protocol,
        substrate,
        group,
        rendezvous,
        host_routers,
        &ones,
        seed,
    )
}

/// [`build_net`] with an aggregate member population per host slot:
/// slot `k` gets a [`PopulationNode`] holding `populations[k]` members
/// when that count exceeds one, and the classic explicit [`HostNode`]
/// otherwise — so a million-member scenario still attaches one world
/// node per LAN.
#[allow(clippy::too_many_arguments)]
pub fn build_net_aggregate(
    g: &Graph,
    protocol: Protocol,
    substrate: Substrate,
    group: Group,
    rendezvous: NodeId,
    host_routers: &[NodeId],
    populations: &[u64],
    seed: u64,
) -> ScenarioNet {
    assert_eq!(
        populations.len(),
        host_routers.len(),
        "one population count per host slot"
    );
    let topo = Topology::from_graph(g);
    let rdv_addr = router_addr(rendezvous);

    let mut oracle = OracleRib::for_all(g, &topo);
    for &n in host_routers {
        let h = host_addr(n, 0);
        for (i, rib) in oracle.iter_mut().enumerate() {
            if i != n.index() {
                rib.alias_host(h, router_addr(n));
            }
        }
    }
    let mut oracle_iter = oracle.into_iter();

    let (mut world, _links) = topo.build_world(g, seed, |plan| {
        let unicast: Box<dyn unicast::Engine> = match substrate {
            Substrate::Oracle => Box::new(oracle_iter.next().expect("rib per plan")),
            Substrate::DistanceVector => {
                let _ = oracle_iter.next();
                Box::new(DvEngine::new(plan, DvConfig::default()))
            }
            Substrate::LinkState => {
                let _ = oracle_iter.next();
                Box::new(LsEngine::new(plan, LsConfig::default()))
            }
        };
        match protocol {
            Protocol::Pim => {
                let mut r = PimRouter::new(
                    Engine::new(plan.addr, plan.ifaces.len(), PimConfig::default()),
                    unicast,
                );
                r.engine_mut().set_rp_mapping(group, vec![rdv_addr]);
                Box::new(r)
            }
            Protocol::Dvmrp => Box::new(DvmrpRouter::new(
                DvmrpEngine::new(plan.addr, plan.ifaces.len(), DvmrpConfig::default()),
                unicast,
            )),
            Protocol::Cbt => {
                let mut e = CbtEngine::new(plan.addr, CbtConfig::default());
                e.set_core(group, rdv_addr);
                Box::new(CbtRouter::new(e, unicast))
            }
        }
    });

    let mut hosts = Vec::new();
    for (k, &n) in host_routers.iter().enumerate() {
        let ha = host_addr(n, 0);
        let hi = if populations[k] > 1 {
            world.add_node(Box::new(PopulationNode::new(ha)))
        } else {
            world.add_node(Box::new(HostNode::new(ha)))
        };
        let (_l, ifs) = world.add_lan(&[NodeIdx(n.index()), hi], Duration(1));
        let r = NodeIdx(n.index());
        match protocol {
            Protocol::Pim => world
                .node_mut::<PimRouter>(r)
                .attach_host_lan(ifs[0], &[ha]),
            Protocol::Dvmrp => world
                .node_mut::<DvmrpRouter>(r)
                .attach_host_lan(ifs[0], &[ha]),
            Protocol::Cbt => world
                .node_mut::<CbtRouter>(r)
                .attach_host_lan(ifs[0], &[ha]),
        }
        hosts.push((hi, ha));
    }

    let peers = topo
        .plans()
        .iter()
        .map(|p| {
            p.ifaces
                .iter()
                .map(|i| IfacePeer {
                    iface: i.iface,
                    neighbor: i.neighbor,
                    neighbor_addr: i.neighbor_addr,
                })
                .collect()
        })
        .collect();

    ScenarioNet {
        world,
        hosts,
        protocol,
        group,
        router_count: g.node_count(),
        rendezvous,
        host_routers: host_routers.to_vec(),
        peers,
        populations: populations.to_vec(),
    }
}

impl ScenarioNet {
    /// Schedule host slot `k` to stream `count` data packets starting at
    /// `start`, `gap` ticks apart. Returns nothing; sequence numbers are
    /// consecutive from the host's own counter.
    pub fn send_at(&mut self, slot: usize, start: u64, count: u64, gap: u64) {
        let (host, _) = self.hosts[slot];
        let group = self.group;
        let aggregate = self.populations[slot] > 1;
        for k in 0..count {
            self.world.at(SimTime(start + k * gap), move |w| {
                w.call_node(host, |n, ctx| {
                    if aggregate {
                        n.as_any_mut()
                            .downcast_mut::<PopulationNode>()
                            .expect("host slot is a PopulationNode")
                            .send_data(ctx, group);
                    } else {
                        n.as_any_mut()
                            .downcast_mut::<HostNode>()
                            .expect("host slot is a HostNode")
                            .send_data(ctx, group);
                    }
                });
            });
        }
    }

    /// Schedule host slot `k`'s members to join at `at`: the slot's whole
    /// population for an aggregate slot, the single host otherwise.
    pub fn join_at(&mut self, slot: usize, at: u64) {
        let (host, _) = self.hosts[slot];
        let group = self.group;
        let population = self.populations[slot];
        self.world.at(SimTime(at), move |w| {
            w.call_node(host, |n, ctx| {
                if population > 1 {
                    n.as_any_mut()
                        .downcast_mut::<PopulationNode>()
                        .expect("host slot is a PopulationNode")
                        .join_members(ctx, group, population);
                } else {
                    n.as_any_mut()
                        .downcast_mut::<HostNode>()
                        .expect("host slot is a HostNode")
                        .join(ctx, group);
                }
            });
        });
    }

    /// Schedule host slot `k`'s entire membership to leave at `at`.
    pub fn leave_at(&mut self, slot: usize, at: u64) {
        let (host, _) = self.hosts[slot];
        let group = self.group;
        let population = self.populations[slot];
        self.world.at(SimTime(at), move |w| {
            w.call_node(host, |n, _ctx| {
                if population > 1 {
                    n.as_any_mut()
                        .downcast_mut::<PopulationNode>()
                        .expect("host slot is a PopulationNode")
                        .leave_members(group, population);
                } else {
                    n.as_any_mut()
                        .downcast_mut::<HostNode>()
                        .expect("host slot is a HostNode")
                        .leave(group);
                }
            });
        });
    }

    /// The **flash-crowd** workload: `cycles` rounds of synchronized
    /// join/leave churn across every member slot (1..), each round
    /// `period` ticks long with joins staggered `stagger` ticks apart
    /// and the matching leaves half a period later, followed by one
    /// final join wave that stays. The near-simultaneous join waves are
    /// the control-plane overload the congestion oracles watch: every
    /// wave converges on the RP/core as a burst of joins (PIM/CBT) or
    /// grafts (DVMRP). Returns the time of the last scheduled join so
    /// callers can place probe traffic after the crowd has settled.
    pub fn flash_crowd(&mut self, start: u64, cycles: u64, period: u64, stagger: u64) -> u64 {
        let slots = self.hosts.len();
        for c in 0..cycles {
            let base = start + c * period;
            for k in 1..slots {
                let jt = base + (k as u64 - 1) * stagger;
                self.join_at(k, jt);
                self.leave_at(k, jt + period / 2);
            }
        }
        let base = start + cycles * period;
        let mut last = base;
        for k in 1..slots {
            let jt = base + (k as u64 - 1) * stagger;
            self.join_at(k, jt);
            last = last.max(jt);
        }
        last
    }

    /// The **elephant-senders** workload: every slot in `slots` streams
    /// `count` data packets `gap` ticks apart from `start` (staggered by
    /// one tick per sender so the streams interleave deterministically).
    /// Pointed at non-member slots under PIM, every stream's packets
    /// enter the register path and converge on the RP — the data-plane
    /// overload that makes a capped RP-side link queue and shed load.
    pub fn elephants(&mut self, slots: &[usize], start: u64, count: u64, gap: u64) {
        for (i, &s) in slots.iter().enumerate() {
            self.send_at(s, start + i as u64, count, gap);
        }
    }

    /// The sequence numbers host slot `k` received from `source`.
    pub fn seqs(&self, slot: usize, source: Addr) -> Vec<u64> {
        let (host, _) = self.hosts[slot];
        if self.populations[slot] > 1 {
            self.world
                .node::<PopulationNode>(host)
                .seqs_from(source, self.group)
        } else {
            self.world
                .node::<HostNode>(host)
                .seqs_from(source, self.group)
        }
    }

    /// Attach one structured-event sink to the whole network: the world's
    /// own telemetry (timers, injected fault markers) plus a per-node
    /// [`telemetry::Telem`] handle keyed by graph node index, wired by the
    /// world at `start()` through per-region buffers so the stream stays
    /// canonical under any partition. Telemetry only observes — the packet
    /// trace is identical with or without a sink.
    pub fn attach_telemetry(&mut self, sink: SharedSink) {
        self.world.set_telemetry(sink);
    }

    /// Router `node`'s `show mroute`-style state snapshot at `now`
    /// (see [`telemetry::StateDump`]).
    pub fn state_dump(&self, node: usize, now: SimTime) -> String {
        let idx = NodeIdx(node);
        match self.protocol {
            Protocol::Pim => self.world.node::<PimRouter>(idx).state_dump(now),
            Protocol::Dvmrp => self.world.node::<DvmrpRouter>(idx).state_dump(now),
            Protocol::Cbt => self.world.node::<CbtRouter>(idx).state_dump(now),
        }
    }
}
