//! Command-line deterministic fuzz harness.
//!
//! ```text
//! fuzz [smoke|full] [--seed N]
//! ```
//!
//! * `smoke` (default): 12k wire frames + 2k engine frames per protocol —
//!   the tier-1 gate, a few seconds.
//! * `full`: 200k wire frames + 10k engine frames per protocol — the
//!   CHAOS experiment campaign.
//!
//! Everything derives from the seed (default 1); the run is offline and
//! deterministic, so any failure reproduces from the same command line.
//! Prints the reject taxonomy and per-protocol absorption stats; exits
//! nonzero on any panic, round-trip failure, or oracle violation.

use scenario::{fuzz_engines, fuzz_wire};

fn main() {
    let mut mode = "smoke".to_string();
    let mut seed: u64 = 1;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => {
                seed = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
                i += 2;
            }
            m @ ("smoke" | "full") => {
                mode = m.to_string();
                i += 1;
            }
            other => panic!("unknown arg {other:?}; usage: fuzz [smoke|full] [--seed N]"),
        }
    }
    let (wire_frames, engine_frames) = match mode.as_str() {
        "full" => (200_000u64, 10_000u64),
        _ => (12_000, 2_000),
    };

    let mut failed = false;

    let w = fuzz_wire(seed, wire_frames);
    println!(
        "wire: {} frames, {} accepted, {} panics, {} round-trip failures",
        w.frames, w.accepted, w.panics, w.roundtrip_failures
    );
    for (kind, n) in &w.rejects {
        println!("  reject {kind:<12} {n}");
    }
    if w.panics > 0 || w.roundtrip_failures > 0 {
        failed = true;
    }

    for outcome in fuzz_engines(seed, engine_frames) {
        println!(
            "engine {:>5}: {} injected, {} decode failures, {} malformed drops, {} violation(s)",
            outcome.protocol.name(),
            outcome.injected,
            outcome.decode_failures,
            outcome.malformed_drops,
            outcome.violations.len()
        );
        for v in &outcome.violations {
            eprintln!("  violation: {v}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
    println!("fuzz {mode}: OK");
}
