//! Overload smoke test: the two congestion workloads from the capacity
//! model run against all three protocols under the full oracle battery.
//!
//! ```text
//! overload_smoke [--threads N] [--seed N]
//! ```
//!
//! Two workloads on the diamond topology, each with the r1-r2 link
//! (link 1 — the RP-side edge) capped to a few bytes per tick while the
//! load is applied, then restored before the probe train:
//!
//! * **flash-crowd** — cycles of synchronized join/leave churn across
//!   every member slot plus a dense warm-up train, so join waves and
//!   data compete for the capped link. Control priority keeps the
//!   joins flowing while data queues and sheds.
//! * **rp-overload** — elephant streams from the member slots converge
//!   on the RP (under PIM, through the register path) across the capped
//!   link, overflowing its transmit queue.
//!
//! Both runs must actually congest (tail drops or a nonzero queue peak —
//! a workload too weak to bite is itself a failure), and every oracle
//! must stay green: bounded queues, no control-plane starvation, and
//! eventual delivery of the post-heal probe train (`congestion-recovery`
//! relabels the delivery oracle when the run congested). Exits nonzero
//! on any violation.
//!
//! The printed counters are part of the deterministic contract:
//! `scripts/check.sh` diffs this output at `--threads 1` vs `4`, so
//! queue drops, ECN marks, and peak depth must be thread-invariant.

use netsim::{host_addr, SimTime};
use scenario::{
    check_congestion_recovery, check_delivery, check_structure, topology, FaultEvent,
    FaultSchedule, Protocol, Violation,
};
use std::sync::{Arc, Mutex};
use telemetry::MetricsAggregator;

/// Warm-up packets (absorb the PIM shared-tree → SPT switchover and
/// provide the data load that fights the capped link).
const TRAIN: u64 = 10;
/// Checked probe packets, sent after the heal.
const PROBES: u64 = 20;
/// Probe stream start tick (the cap heals at [`HEAL_AT`]).
const PROBE_START: u64 = 1500;
/// Gap between probe packets.
const PROBE_GAP: u64 = 25;
/// Tick at which the capped link is restored to unlimited.
const HEAL_AT: u64 = 1200;
/// Run horizon: probes end at 1975; generous in-flight margin.
const CHECK_AT: u64 = 3000;
/// The capped link: diamond link 1 is r1-r2, the edge into the RP.
const CAPPED_LINK: usize = 1;

fn usage() -> ! {
    eprintln!("usage: overload_smoke [--threads N] [--seed N]");
    std::process::exit(2);
}

/// One workload: a name, the capacity schedule, and the traffic shape.
struct Workload {
    name: &'static str,
    schedule: FaultSchedule,
    traffic: fn(&mut scenario::ScenarioNet),
}

/// Flash crowd: churn waves under the cap, warm-up data in the thick of
/// it, probes after the heal.
fn flash_crowd_traffic(net: &mut scenario::ScenarioNet) {
    net.flash_crowd(50, 3, 200, 7);
    net.send_at(0, 700, TRAIN, 5);
    net.send_at(0, PROBE_START, PROBES, PROBE_GAP);
}

/// RP overload: members join early, elephant streams from the member
/// slots cross the capped link toward the RP, probes after the heal.
fn rp_overload_traffic(net: &mut scenario::ScenarioNet) {
    net.join_at(1, 20);
    net.join_at(2, 30);
    net.send_at(0, 100, TRAIN, 10);
    net.elephants(&[1, 2], 250, 40, 5);
    net.send_at(0, PROBE_START, PROBES, PROBE_GAP);
}

fn workloads() -> Vec<Workload> {
    let cap = |at: u64| {
        let mut s = FaultSchedule::default();
        s.push(at, FaultEvent::Bandwidth(CAPPED_LINK, 2, 48, 1));
        s.push(HEAL_AT, FaultEvent::Bandwidth(CAPPED_LINK, 0, 0, 1));
        s
    };
    vec![
        Workload {
            name: "flash-crowd",
            schedule: cap(100),
            traffic: flash_crowd_traffic,
        },
        Workload {
            name: "rp-overload",
            schedule: cap(200),
            traffic: rp_overload_traffic,
        },
    ]
}

fn main() {
    let mut threads = 1usize;
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |what: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{what} needs a number");
                usage()
            })
        };
        match a.as_str() {
            "--threads" => threads = num("--threads") as usize,
            "--seed" => seed = num("--seed"),
            _ => usage(),
        }
    }

    let topo = topology("diamond").expect("diamond topology");
    println!("overload_smoke topology={} threads={threads}", topo.name);

    let mut failed = false;
    for w in workloads() {
        for proto in Protocol::ALL {
            let mut net = scenario::build_net(
                &topo.graph,
                proto,
                scenario::Substrate::Oracle,
                wire::Group::test(1),
                topo.rendezvous,
                &topo.host_routers,
                par::mix(seed, 12, proto as u64),
            );
            let host_nodes: Vec<_> = net.hosts.iter().map(|&(n, _)| n).collect();
            w.schedule.install(&mut net.world, &host_nodes, net.group);
            (w.traffic)(&mut net);
            let metrics = Arc::new(Mutex::new(MetricsAggregator::new()));
            net.attach_telemetry(metrics.clone());
            net.world.parallelize(threads);
            net.world.run_until(SimTime(CHECK_AT));

            let members: Vec<u32> = (1..topo.host_routers.len() as u32).collect();
            let source = host_addr(topo.host_routers[0], 0);
            let expected: Vec<u64> = (TRAIN..TRAIN + PROBES).collect();

            let c = net.world.counters();
            let (drops_data, drops_ctrl, marks, peak) = (
                c.queue_drops_data(),
                c.queue_drops_ctrl(),
                c.ecn_marks(),
                c.peak_queue_bytes(),
            );
            let congested = drops_data > 0 || drops_ctrl > 0 || peak > 0;

            let mut violations: Vec<Violation> = check_structure(&net);
            if congested {
                violations.extend(check_congestion_recovery(&net, &members, source, &expected));
            } else {
                violations.extend(check_delivery(&net, &members, source, &expected));
            }
            if !congested {
                violations.push(Violation {
                    oracle: "overload-bites",
                    node: 0,
                    detail: format!("workload {} never congested the capped link", w.name),
                });
            }

            // Queue-depth distribution over the run's power-of-two peak
            // samples (deterministic, so part of the 1t-vs-4t diff).
            let (qd50, qd99) = {
                let mut m = metrics.lock().unwrap();
                m.finish();
                (
                    m.queue_depth.percentile(50.0),
                    m.queue_depth.percentile(99.0),
                )
            };

            if violations.is_empty() {
                println!(
                    "overload_smoke {:<11} {:<5} PASS drops={drops_data}/{drops_ctrl} \
                     ecn={marks} peak={peak} qdepth_p50={qd50} qdepth_p99={qd99}",
                    w.name,
                    proto.name(),
                );
            } else {
                failed = true;
                println!(
                    "overload_smoke {:<11} {:<5} FAIL violations={}",
                    w.name,
                    proto.name(),
                    violations.len()
                );
                for v in violations.iter().take(10) {
                    println!("  {} node {}: {}", v.oracle, v.node, v.detail);
                }
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
