//! Hierarchical-scale smoke test: all three protocols over a wide-area
//! backbone + stub-domain topology with aggregate member populations.
//!
//! ```text
//! hier_smoke [--domains N] [--population N] [--threads N] [--seed N]
//! ```
//!
//! Builds one hierarchical internetwork (Waxman backbone, stub domains of
//! nine routers each — 500 routers at the default 50 domains), attaches a
//! [`igmp::PopulationNode`] aggregate site to every domain's leaf router
//! (10^4 members total at the default population of 200), and runs each of
//! PIM / DVMRP / CBT over it with the oracle unicast substrate. A warm-up
//! train from the first site absorbs the PIM shared-tree → SPT switchover
//! transient; afterwards every probe packet must reach every other site
//! and the full oracle battery must hold — including the site-scaled state
//! bound, which fails if any router's table grows with *members* rather
//! than *sites*. Exits nonzero on any violation.
//!
//! This is the scenario-layer counterpart of `simbench --hier`: simbench
//! measures throughput and fingerprints, this checks protocol invariants
//! at the same scale.

use graph::gen::{hierarchical, HierParams, WaxmanParams};
use netsim::{host_addr, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scenario::{
    build_net_aggregate, check_bounded_state, check_delivery, check_structure, Protocol, Substrate,
    Violation,
};
use wire::Group;

/// Warm-up packets (absorb RP-tree → SPT switchover losses).
const TRAIN: u64 = 10;
/// Checked probe packets, sent after the warm-up settles.
const PROBES: u64 = 20;
/// Probe stream start tick (joins at 20.. have long converged).
const PROBE_START: u64 = 600;
/// Gap between probe packets.
const PROBE_GAP: u64 = 25;
/// Run horizon: probes end at 1075; generous in-flight margin.
const CHECK_AT: u64 = 1600;

fn usage() -> ! {
    eprintln!("usage: hier_smoke [--domains N] [--population N] [--threads N] [--seed N]");
    std::process::exit(2);
}

fn main() {
    let mut domains = 50usize;
    let mut population = 200u64;
    let mut threads = 1usize;
    let mut seed = 11u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut num = |what: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{what} needs a number");
                usage()
            })
        };
        match a.as_str() {
            "--domains" => domains = num("--domains") as usize,
            "--population" => population = num("--population"),
            "--threads" => threads = num("--threads") as usize,
            "--seed" => seed = num("--seed"),
            _ => usage(),
        }
    }

    let params = HierParams {
        backbone: WaxmanParams {
            nodes: domains.max(3),
            ..WaxmanParams::default()
        },
        domains,
        domain_size: 9,
        ..HierParams::default()
    };
    let mut rng = StdRng::seed_from_u64(par::mix(seed, 8, domains as u64));
    let h = hierarchical(&params, &mut rng);
    let hints = h.region_hints(threads);

    // One aggregate site per domain, at the leaf router.
    let host_routers: Vec<_> = (0..h.domains).map(|d| h.leaf(d)).collect();
    let populations = vec![population; host_routers.len()];
    let total_members: u64 = populations.iter().sum();
    let group = Group::test(1);
    println!(
        "hier_smoke routers={} domains={} members={} threads={threads}",
        h.node_count(),
        h.domains,
        total_members,
    );

    let mut failed = false;
    for proto in Protocol::ALL {
        let mut net = build_net_aggregate(
            &h.graph,
            proto,
            Substrate::Oracle,
            group,
            graph::NodeId(0),
            &host_routers,
            &populations,
            par::mix(seed, 9, proto as u64),
        );
        // Hosts inherit their attachment router's region, exactly like
        // the bench harness, so the partition follows domain boundaries.
        let mut full_hints = hints.clone();
        for &n in &host_routers {
            full_hints.push(hints[n.index()]);
        }
        for slot in 0..host_routers.len() {
            net.join_at(slot, 20 + slot as u64);
        }
        net.send_at(0, 100, TRAIN, 40);
        net.send_at(0, PROBE_START, PROBES, PROBE_GAP);
        net.world.parallelize(threads);
        if threads > 1 {
            net.world.set_partition(&full_hints);
        }
        net.world.run_until(SimTime(CHECK_AT));

        let members: Vec<u32> = (1..host_routers.len() as u32).collect();
        let source = host_addr(host_routers[0], 0);
        let expected: Vec<u64> = (TRAIN..TRAIN + PROBES).collect();
        let mut violations: Vec<Violation> = check_structure(&net);
        violations.extend(check_delivery(&net, &members, source, &expected));
        violations.extend(check_bounded_state(&net));

        let events = net.world.counters().events_dispatched();
        if violations.is_empty() {
            println!("hier_smoke {:<5} PASS events={events}", proto.name());
        } else {
            failed = true;
            println!(
                "hier_smoke {:<5} FAIL events={events} violations={}",
                proto.name(),
                violations.len()
            );
            for v in violations.iter().take(10) {
                println!("  {} node {}: {}", v.oracle, v.node, v.detail);
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
