//! Coverage-guided schedule search driver.
//!
//! ```text
//! search MODE [--budget N] [--seed S] [--threads N] [--topology NAME]
//!             [--corpus DIR] [--out DIR]
//! ```
//!
//! Modes:
//!
//! - `smoke` — the tier-1 gate: replay the committed regression corpus
//!   byte-identically, self-test the shrinker on a known violating
//!   fixture (1-minimality included), then run a bounded guided search.
//!   Exits nonzero on any corpus divergence, shrinker failure, or
//!   violation the search uncovers.
//! - `compare` — run uniform-random and coverage-guided search on
//!   identical seed budgets per topology and print the SEARCH table
//!   EXPERIMENTS.md records (distinct coverage entries, violations per
//!   1k runs, coverage curve checkpoints).
//! - `full` — guided search over the zoo at `--budget`; every violating
//!   schedule is shrunk to 1-minimal, its artifact replay-verified, and
//!   written under `--out`.
//! - `rebuild-corpus` — regenerate the committed regression pins
//!   (PR 2's register-suppression and orphaned-upstream scenarios,
//!   shrinker-minimized) into `--corpus`.
//!
//! Every mode is deterministic: identical flags produce identical
//! output (and artifacts) at any `--threads` value.

use scenario::schedule::{FaultEvent, FaultSchedule};
use scenario::{
    coverage_search, random_schedule, random_search, replay_corpus, run_case, shrink_violation,
    shrink_with, topologies, topology, verify_replay, Artifact, CaseOutcome, Protocol,
    SearchConfig, SearchReport, TopoSpec,
};

/// The congestion-degradation fixture: the diamond's r1-r2 link capped
/// with control priority on, overloaded by a member burst, healed
/// before the probe train. It congests for real (queue-depth and
/// queue-drop events in the telemetry stream) yet converges clean.
fn congestion_fixture() -> (TopoSpec, FaultSchedule) {
    let topo = topology("diamond").unwrap();
    let mut s = FaultSchedule::default();
    s.push(30, FaultEvent::Join(1));
    s.push(40, FaultEvent::Join(2));
    s.push(500, FaultEvent::Bandwidth(1, 2, 48, 1));
    s.push(600, FaultEvent::Burst(1, 24, 2));
    s.push(2950, FaultEvent::Bandwidth(1, 0, 0, 1));
    (topo, s)
}

/// Count `ctrl_send` telemetry lines whose message kind is `kind`.
fn ctrl_sends(outcome: &CaseOutcome, kind: &str) -> usize {
    let needle = format!("\"kind\":\"{kind}\"");
    outcome
        .telemetry
        .lines()
        .filter(|l| l.contains("\"ev\":\"ctrl_send\"") && l.contains(&needle))
        .count()
}

/// Find the first seed in `0..limit` whose normalized random schedule
/// satisfies `pred` when run under `protocol`, then shrink it while the
/// predicate holds. Panics (with the mode's name) if no seed qualifies —
/// rebuild-corpus must not silently emit a vacuous pin.
fn build_pin<F>(
    name: &str,
    topo: &TopoSpec,
    protocol: Protocol,
    teardown: bool,
    limit: u64,
    pred: F,
) -> (Artifact, u64)
where
    F: Fn(&FaultSchedule, &CaseOutcome) -> bool + Copy,
{
    for seed in 0..limit {
        let schedule = random_schedule(topo, seed, teardown);
        let outcome = run_case(topo, protocol, &schedule, seed);
        if !pred(&schedule, &outcome) {
            continue;
        }
        let result = shrink_with(topo, protocol, seed, &schedule, pred)
            .expect("predicate held on the unshrunk schedule");
        let artifact = Artifact::capture(topo, protocol, &result.schedule, seed, &result.outcome);
        verify_replay(&artifact).expect("minimized pin must replay byte-identically");
        println!(
            "pin {name}: seed {seed}, {} -> {} events in {} runs ({} passes)",
            result.stats.initial_events,
            result.stats.final_events,
            result.stats.runs,
            result.stats.passes,
        );
        return (artifact, seed);
    }
    panic!("rebuild-corpus: no seed in 0..{limit} satisfies the {name} predicate");
}

/// The known-violating shrinker fixture: crash the line-stub's junction
/// router mid-window with no restart — every protocol loses delivery to
/// the far members (the same shape `scenario/tests/replay.rs` pins).
fn broken_fixture() -> (TopoSpec, FaultSchedule) {
    let topo = topology("line-stub").unwrap();
    let mut s = FaultSchedule::default();
    s.push(30, FaultEvent::Join(1));
    s.push(40, FaultEvent::Join(3));
    s.push(300, FaultEvent::CrashRouter(2));
    (topo, s)
}

/// Assert the shrinker's own contract on the broken fixture:
/// determinism, property preservation, and 1-minimality.
fn shrinker_selftest() -> Result<(), String> {
    let (topo, schedule) = broken_fixture();
    let a = shrink_violation(&topo, Protocol::Pim, 7, &schedule)
        .ok_or("fixture did not violate any oracle")?;
    let b = shrink_violation(&topo, Protocol::Pim, 7, &schedule)
        .ok_or("fixture did not violate on the second shrink")?;
    if a.schedule != b.schedule {
        return Err("shrinking is not deterministic".into());
    }
    if a.outcome.violations.is_empty() {
        return Err("minimized schedule no longer violates".into());
    }
    // 1-minimality: no single-event deletion still violates the same
    // oracle set.
    let oracles: std::collections::BTreeSet<&str> =
        a.outcome.violations.iter().map(|v| v.oracle).collect();
    for i in 0..a.schedule.events.len() {
        let cand = a.schedule.with_deleted(i);
        let o = run_case(&topo, Protocol::Pim, &cand, 7);
        let got: std::collections::BTreeSet<&str> = o.violations.iter().map(|v| v.oracle).collect();
        if oracles.iter().all(|x| got.contains(x)) {
            return Err(format!("not 1-minimal: event {i} is deletable"));
        }
    }
    println!(
        "shrinker self-test: {} -> {} events, still violating {:?}, 1-minimal",
        a.stats.initial_events,
        a.stats.final_events,
        oracles.iter().collect::<Vec<_>>()
    );
    Ok(())
}

/// Shrink every violating evaluation in `report` and write the verified
/// artifacts under `out`. Returns how many were written.
fn write_violations(topo: &TopoSpec, report: &SearchReport, out: &std::path::Path) -> usize {
    let mut written = 0;
    for (i, ev) in report.violating.iter().enumerate() {
        for (protocol, _) in &ev.violations {
            match shrink_violation(topo, *protocol, ev.world_seed, &ev.schedule) {
                Some(result) => {
                    let artifact = Artifact::capture(
                        topo,
                        *protocol,
                        &result.schedule,
                        ev.world_seed,
                        &result.outcome,
                    );
                    if let Err(e) = verify_replay(&artifact) {
                        eprintln!("artifact {i} ({}) failed replay: {e}", protocol.name());
                        continue;
                    }
                    std::fs::create_dir_all(out).expect("create --out dir");
                    let path = out.join(format!("{}-{}-{i}.replay", topo.name, protocol.name()));
                    std::fs::write(&path, artifact.to_text()).expect("write artifact");
                    println!(
                        "wrote {} ({} events)",
                        path.display(),
                        result.stats.final_events
                    );
                    written += 1;
                }
                None => eprintln!(
                    "violating schedule {i} ({}) stopped violating under shrink predicate",
                    protocol.name()
                ),
            }
        }
    }
    written
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mode = argv.first().cloned().unwrap_or_else(|| "smoke".to_string());
    let mut cfg = SearchConfig::default();
    let mut topo_filter: Option<String> = None;
    let mut corpus = "corpus".to_string();
    let mut out = "target/search".to_string();
    let mut i = 1;
    while i < argv.len() {
        let val = |i: usize| -> &str {
            argv.get(i + 1)
                .unwrap_or_else(|| panic!("{} needs a value", argv[i]))
        };
        match argv[i].as_str() {
            "--budget" => cfg.budget = val(i).parse().expect("--budget needs a number"),
            "--seed" => cfg.seed = val(i).parse().expect("--seed needs a number"),
            "--threads" => cfg.threads = val(i).parse().expect("--threads needs a number"),
            "--topology" => topo_filter = Some(val(i).to_string()),
            "--corpus" => corpus = val(i).to_string(),
            "--out" => out = val(i).to_string(),
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    let zoo: Vec<TopoSpec> = topologies()
        .into_iter()
        .filter(|t| topo_filter.as_deref().is_none_or(|f| f == t.name))
        .collect();
    assert!(!zoo.is_empty(), "--topology matched nothing");

    match mode.as_str() {
        "smoke" => {
            let mut failed = false;

            // 1. Corpus replay (byte-identity of every committed pin).
            let dir = std::path::Path::new(&corpus);
            if dir.is_dir() {
                let results = replay_corpus(dir).expect("corpus unreadable");
                for (name, r) in &results {
                    if let Err(e) = r {
                        eprintln!("corpus {name}: REPLAY DIVERGED: {e}");
                        failed = true;
                    }
                }
                println!("corpus: {} artifact(s) replayed byte-identically", {
                    results.iter().filter(|(_, r)| r.is_ok()).count()
                });
            } else {
                eprintln!("corpus {corpus}: missing directory");
                failed = true;
            }

            // 2. Shrinker self-test on the known violating fixture.
            if let Err(e) = shrinker_selftest() {
                eprintln!("shrinker self-test FAILED: {e}");
                failed = true;
            }

            // 3. Bounded guided search; any violation it uncovers is a
            // finding the gate must surface.
            let smoke_cfg = SearchConfig {
                budget: 12,
                batch: 6,
                ..cfg
            };
            let report = coverage_search(&zoo[0], &smoke_cfg);
            println!(
                "search smoke: {} evals on {}, {} coverage entries, {} violating",
                report.evals,
                zoo[0].name,
                report.entries,
                report.violating.len()
            );
            if report.entries == 0 {
                eprintln!("search smoke: coverage map is empty — sink wiring broken");
                failed = true;
            }
            if !report.violating.is_empty() {
                write_violations(&zoo[0], &report, std::path::Path::new(&out));
                failed = true;
            }
            if failed {
                std::process::exit(1);
            }
            println!("search smoke: OK");
        }
        "compare" => {
            println!("| topology | strategy | evals | coverage entries | violations/1k runs |");
            println!("|----------|----------|-------|------------------|--------------------|");
            let mut curves = Vec::new();
            for topo in &zoo {
                let rnd = random_search(topo, &cfg);
                let gui = coverage_search(topo, &cfg);
                for (name, r) in [("random", &rnd), ("guided", &gui)] {
                    let runs = r.evals * Protocol::ALL.len();
                    println!(
                        "| {} | {} | {} | {} | {:.1} |",
                        topo.name,
                        name,
                        r.evals,
                        r.entries,
                        r.violating.len() as f64 * 1000.0 / runs as f64
                    );
                }
                curves.push((topo.name, rnd.history, gui.history));
            }
            for (name, rnd, gui) in curves {
                let fmt = |h: &[(usize, usize)]| {
                    h.iter()
                        .map(|(e, d)| format!("{e}:{d}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                };
                println!("curve {name} random {}", fmt(&rnd));
                println!("curve {name} guided {}", fmt(&gui));
            }
        }
        "full" => {
            let mut total_viol = 0;
            for topo in &zoo {
                let report = coverage_search(topo, &cfg);
                println!(
                    "{}: {} evals, {} coverage entries, {} violating",
                    topo.name,
                    report.evals,
                    report.entries,
                    report.violating.len()
                );
                total_viol += write_violations(topo, &report, std::path::Path::new(&out));
            }
            if total_viol > 0 {
                std::process::exit(1);
            }
        }
        "rebuild-corpus" => {
            // The PR 2 regression pins, rebuilt minimal. Both are
            // zero-violation artifacts: they pin the *fixed* behavior, so
            // corpus replay fails the moment the bug (or any behavioral
            // drift) reappears.
            //
            // register-suppression: a PIM run with live members (the
            // delivery oracle armed) that still exercises the register
            // path hard (>=2 encapsulated registers reaching the RP)
            // and converges clean — the run the PR 2 suppression
            // deadlock used to wedge.
            let diamond = topology("diamond").unwrap();
            let (reg, _) = build_pin(
                "register-suppression",
                &diamond,
                Protocol::Pim,
                false,
                200,
                |s, o| {
                    o.violations.is_empty()
                        && !s.final_members(3).is_empty()
                        && ctrl_sends(o, "pim-register") >= 2
                },
            );
            // orphaned-upstream: a tree is actually built (a join) and
            // fully torn down (membership empties), with a mid-window
            // router crash *and* its restart retained — the restarted
            // router must not resurrect upstream state; the no-orphans
            // oracle passing pins the PR 2 orphaned-upstream fix.
            let line = topology("line-stub").unwrap();
            let (orp, _) = build_pin(
                "orphaned-upstream",
                &line,
                Protocol::Pim,
                true,
                200,
                |s, o| {
                    o.violations.is_empty()
                        && s.final_members(4).is_empty()
                        && s.events
                            .iter()
                            .any(|(_, e)| matches!(e, FaultEvent::Join(_)))
                        && s.events
                            .iter()
                            .any(|(_, e)| matches!(e, FaultEvent::Leave(_)))
                        && s.events
                            .iter()
                            .any(|(_, e)| matches!(e, FaultEvent::CrashRouter(_)))
                        && s.events
                            .iter()
                            .any(|(_, e)| matches!(e, FaultEvent::RestartRouter(_)))
                },
            );
            // congestion-degradation: a bandwidth-capped link with
            // control priority on, overloaded by a member burst — the
            // run congests for real (queue-depth *and* queue-drop
            // events in the stream) yet every oracle stays green.
            // Another zero-violation pin: congestion may degrade
            // service while it lasts, never correctness, and corpus
            // replay fails the moment the capacity model drifts.
            let (ctopo, cs) = congestion_fixture();
            let cpred = |s: &FaultSchedule, o: &CaseOutcome| {
                o.violations.is_empty()
                    && o.telemetry.contains("\"ev\":\"queue_depth\"")
                    && o.telemetry.contains("\"ev\":\"queue_drop\"")
                    && s.events
                        .iter()
                        .any(|(_, e)| matches!(e, FaultEvent::Bandwidth(_, r, _, _) if *r > 0))
            };
            let cresult = shrink_with(&ctopo, Protocol::Pim, 5, &cs, cpred)
                .expect("congestion fixture must congest and converge clean");
            let cng = Artifact::capture(
                &ctopo,
                Protocol::Pim,
                &cresult.schedule,
                5,
                &cresult.outcome,
            );
            verify_replay(&cng).expect("minimized pin must replay byte-identically");
            println!(
                "pin congestion-degradation: seed 5, {} -> {} events in {} runs ({} passes)",
                cresult.stats.initial_events,
                cresult.stats.final_events,
                cresult.stats.runs,
                cresult.stats.passes,
            );
            let dir = std::path::Path::new(&corpus);
            std::fs::create_dir_all(dir).expect("create corpus dir");
            std::fs::write(dir.join("register-suppression.replay"), reg.to_text())
                .expect("write pin");
            std::fs::write(dir.join("orphaned-upstream.replay"), orp.to_text()).expect("write pin");
            std::fs::write(dir.join("congestion-degradation.replay"), cng.to_text())
                .expect("write pin");
            let results = replay_corpus(dir).expect("corpus unreadable");
            for (name, r) in &results {
                r.as_ref()
                    .unwrap_or_else(|e| panic!("freshly built pin {name} diverged: {e}"));
            }
            println!(
                "rebuilt {} pin(s) into {corpus}, all replay byte-identically",
                results.len()
            );
        }
        other => {
            eprintln!("unknown mode {other}; usage: search smoke|compare|full|rebuild-corpus");
            std::process::exit(2);
        }
    }
}
