//! Run one scenario end-to-end and pretty-print its telemetry trace.
//!
//! ```text
//! trace [TOPOLOGY] [PROTOCOL] [SEED] [--jsonl]
//! trace why ARTIFACT [--threads N]
//! ```
//!
//! Defaults: `diamond pim 0`. The run is the explorer's standard
//! timeline (joins, fault window, heal, probe train, quiescence at
//! t6000) under the seeded random schedule for `SEED`.
//!
//! By default the output is a merged human-readable timeline: every
//! packet transmission (decoded via `netsim::trace::describe_packet`)
//! interleaved with every structured telemetry event, sorted by sim
//! time, followed by each router's state snapshot and the convergence
//! metrics. With `--jsonl` the raw JSON-lines event stream is printed
//! instead — one object per line, machine-readable.
//!
//! `trace why ARTIFACT` re-executes a replay artifact and answers the
//! question the raw timeline cannot: *why* did the run end in the state
//! it did. It prints the backward causal slice for every implicated
//! router (or, on a passing pin, for the last entry-flag transition of
//! the run), the attributed critical path behind each member's first
//! delivery, each injected fault's blast radius, and the causal-index
//! fingerprint. The output contains no thread count: it is byte-
//! identical at any `--threads`, which check.sh asserts on the corpus.

use netsim::{NodeIdx, SimTime};
use scenario::{
    build_net, random_schedule, run_case_threads, slice_lines, topologies, topology, Artifact,
    Protocol, Substrate,
};
use std::sync::{Arc, Mutex};
use telemetry::{Event, Fanout, JsonlSink, MetricsAggregator, Sink, Ticks};
use wire::Group;

/// The explorer's standard timeline (see `scenario::explore`).
const TRAIN: u64 = 20;
const PROBES: u64 = 8;
const PROBE_START: u64 = 4500;
const PROBE_GAP: u64 = 30;
const CHECK_AT: u64 = 6000;

/// Records every event as a rendered line, unbounded — the pretty
/// printer's source.
#[derive(Default)]
struct Lines(Vec<(u64, String)>);

impl Sink for Lines {
    fn event(&mut self, node: u32, at: Ticks, ev: &Event) {
        self.0.push((at, format!("t{at} r{node} {}", ev.render())));
    }
}

/// `trace why ARTIFACT [--threads N]`: replay the artifact and print
/// the causal explanation. The output never mentions the thread count —
/// it must be byte-identical at any `--threads`.
fn why(args: &[String]) {
    let mut threads = 1usize;
    let mut path = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            threads = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--threads needs a number");
        } else {
            assert!(path.is_none(), "unexpected argument {a:?}");
            path = Some(a.clone());
        }
    }
    let path = path.expect("usage: trace why ARTIFACT [--threads N]");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let artifact = Artifact::from_text(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let topo = topology(&artifact.topology)
        .unwrap_or_else(|| panic!("unknown topology {:?}", artifact.topology));
    let outcome = run_case_threads(
        &topo,
        artifact.protocol,
        &artifact.schedule,
        artifact.seed,
        threads,
    );
    let causal = &outcome.causal;

    println!(
        "# why: {} / {} / seed {}",
        artifact.topology,
        artifact.protocol.name(),
        artifact.seed
    );
    for v in &outcome.violations {
        println!("violation {v}");
    }

    // Backward slices: one per implicated node; on a clean run, the
    // last entry-flag transition of the whole stream.
    let mut nodes: Vec<u32> = outcome.violations.iter().map(|v| v.node as u32).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut sliced = false;
    for n in nodes {
        let anchor = causal
            .last_flag_transition(Some(n))
            .or_else(|| causal.last_event_on(n));
        if let Some(id) = anchor {
            println!("\n## backward slice — n{n} ({})", id.render());
            for l in slice_lines(causal, id) {
                println!("{l}");
            }
            sliced = true;
        }
    }
    if !sliced {
        let anchor = causal
            .last_flag_transition(None)
            .expect("a completed run always has entry-flag transitions");
        println!(
            "\n## backward slice — last entry-flag transition ({})",
            anchor.render()
        );
        for l in slice_lines(causal, anchor) {
            println!("{l}");
        }
    }

    // Attributed critical paths: who carried each member's first
    // delivery, and which hop dominated the latency.
    let group = Group::test(1).addr().0;
    let node_count = topo.graph.node_count() + topo.host_routers.len();
    for member in 0..node_count as u32 {
        let path = causal.critical_path(group, member);
        if !path.is_empty() {
            println!("\n## critical path — group 239.1.0.1, member n{member}");
            for l in path {
                println!("{l}");
            }
        }
    }

    // Fault blast radii.
    let roots = causal.fault_roots();
    if !roots.is_empty() {
        println!("\n## fault roots");
        for r in roots {
            let blast = causal.forward_slice(r).len();
            println!("[{}] blast radius = {blast} dispatches", r.render());
            if let Some(d) = causal.dispatch(r) {
                for rec in &d.records {
                    println!("    t{} r{} {}", rec.at, rec.node, rec.line);
                }
            }
        }
    }

    println!(
        "\n## causal index: {} dispatches, fingerprint {:016x}",
        causal.len(),
        causal.fingerprint()
    );
}

fn main() {
    let mut jsonl_mode = false;
    let mut pos = Vec::new();
    for a in std::env::args().skip(1) {
        if a == "--jsonl" {
            jsonl_mode = true;
        } else {
            pos.push(a);
        }
    }
    if pos.first().map(String::as_str) == Some("why") {
        why(&pos[1..]);
        return;
    }
    let topo_name = pos.first().map(String::as_str).unwrap_or("diamond");
    let proto_name = pos.get(1).map(String::as_str).unwrap_or("pim");
    let seed: u64 = pos
        .get(2)
        .map(|s| s.parse().expect("SEED must be a number"))
        .unwrap_or(0);

    let topo = topology(topo_name).unwrap_or_else(|| {
        let names: Vec<_> = topologies().iter().map(|t| t.name).collect();
        panic!("unknown topology {topo_name:?}; pick one of {names:?}")
    });
    let protocol = Protocol::from_name(proto_name)
        .unwrap_or_else(|| panic!("unknown protocol {proto_name:?}; pim, dvmrp, or cbt"));

    let group = Group::test(1);
    let mut net = build_net(
        &topo.graph,
        protocol,
        Substrate::Oracle,
        group,
        topo.rendezvous,
        &topo.host_routers,
        seed,
    );
    net.world.enable_capture(300_000);

    let lines = Arc::new(Mutex::new(Lines::default()));
    let jsonl = Arc::new(Mutex::new(JsonlSink::new(Vec::<u8>::new())));
    let metrics = Arc::new(Mutex::new(MetricsAggregator::new()));
    let mut fan = Fanout::new();
    fan.push(lines.clone());
    fan.push(jsonl.clone());
    fan.push(metrics.clone());
    net.attach_telemetry(Arc::new(Mutex::new(fan)));

    let schedule = random_schedule(&topo, seed, false);
    let host_nodes: Vec<NodeIdx> = net.hosts.iter().map(|&(n, _)| n).collect();
    schedule.install(&mut net.world, &host_nodes, group);
    net.send_at(0, 100, TRAIN, 40);
    net.send_at(0, PROBE_START, PROBES, PROBE_GAP);
    net.world.run_until(SimTime(CHECK_AT));

    if jsonl_mode {
        print!(
            "{}",
            String::from_utf8(jsonl.lock().unwrap().get_ref().clone()).expect("JSONL is UTF-8")
        );
        return;
    }

    println!("# {topo_name} / {proto_name} / seed {seed} — schedule:");
    for l in schedule.to_text().lines() {
        println!("#   {l}");
    }

    // Merge packet transmissions (already decoded by describe_packet in
    // the capture layer) with telemetry events, stable by sim time.
    let mut merged: Vec<(u64, String)> = net
        .world
        .captured()
        .iter()
        .map(|r| {
            (
                r.at.ticks(),
                format!(
                    "t{} wire link{} r{} {}",
                    r.at.ticks(),
                    r.link.0,
                    r.from.0,
                    r.summary
                ),
            )
        })
        .collect();
    merged.extend(lines.lock().unwrap().0.iter().cloned());
    merged.sort_by_key(|&(t, _)| t);
    for (_, l) in &merged {
        println!("{l}");
    }

    println!("\n# state snapshots at t{CHECK_AT}:");
    for n in 0..net.router_count {
        for l in net.state_dump(n, SimTime(CHECK_AT)).lines() {
            println!("{l}");
        }
    }

    metrics.lock().unwrap().finish();
    println!("\n# convergence metrics:");
    for l in metrics.lock().unwrap().render().lines() {
        println!("{l}");
    }
}
