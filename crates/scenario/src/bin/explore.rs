//! Command-line schedule explorer.
//!
//! ```text
//! explore [SEEDS] [START] [--threads N] [--corpus DIR]
//! ```
//!
//! Runs `SEEDS` seeded schedules (default 50) starting at seed `START`
//! (default 0), each over one topology from the zoo (round-robin) and all
//! three protocols. Seeds fan out over a deterministic scoped-thread pool
//! (each run re-derives everything from its seed), and results are
//! reported in seed order — output is bit-identical for every `--threads`
//! value. Prints a per-protocol summary plus a chaos summary (channel
//! impairments inflicted, malformed frames dropped by decode-error kind,
//! merged post-fault reconvergence histogram); on any oracle violation,
//! prints the full replay artifact plus a one-line `trace.sh` repro hint
//! and exits nonzero.
//!
//! With `--corpus DIR`, every committed `*.replay` regression artifact in
//! `DIR` is replayed byte-identically before the seed sweep; any replay
//! divergence fails the run the same way a violation does.

use scenario::{
    explore_seed, random_schedule, replay_corpus, topologies, Artifact, CaseOutcome, Protocol,
};
use std::collections::BTreeMap;

/// Per-protocol campaign aggregates for the chaos summary.
#[derive(Default)]
struct ChaosAgg {
    /// Channel impairments inflicted, by kind (`corrupt`/`duplicate`/`reorder`).
    impairments: BTreeMap<String, u64>,
    /// Malformed frames dropped, by [`wire::DecodeError::kind`] label.
    drops: BTreeMap<String, u64>,
    /// Merged reconvergence histogram: (count, approx sum, max, buckets).
    reconv: (u64, u128, u64, Vec<u64>),
    /// Raw join-latency samples pooled across the campaign — exact
    /// percentiles, not log2-bucket approximations.
    join_samples: Vec<u64>,
    /// Raw reconvergence samples pooled across the campaign.
    reconv_samples: Vec<u64>,
}

/// Extract `"key":"value"` from a JSONL line.
fn json_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(&line[start..start + end])
}

impl ChaosAgg {
    fn absorb(&mut self, outcome: &CaseOutcome) {
        self.join_samples.extend_from_slice(&outcome.join_samples);
        self.reconv_samples
            .extend_from_slice(&outcome.reconv_samples);
        for line in outcome.telemetry.lines() {
            match json_str(line, "ev") {
                Some("channel_impaired") => {
                    if let Some(what) = json_str(line, "what") {
                        *self.impairments.entry(what.to_string()).or_default() += 1;
                    }
                }
                Some("decode_failed") => {
                    if let Some(kind) = json_str(line, "kind") {
                        *self.drops.entry(kind.to_string()).or_default() += 1;
                    }
                }
                _ => {}
            }
        }
        // Merge the rendered reconvergence histogram: counts and buckets
        // sum exactly, max is max; the mean is re-derived from the
        // truncated per-run means (documentation-grade, ±1 tick).
        let Some(line) = outcome
            .metrics
            .lines()
            .find_map(|l| l.strip_prefix("reconvergence "))
        else {
            return;
        };
        let field = |key: &str| -> Option<&str> {
            let pat = format!("{key}=");
            let start = line.find(&pat)? + pat.len();
            let end = line[start..].find(' ').unwrap_or(line.len() - start);
            Some(&line[start..start + end])
        };
        let (Some(count), Some(mean), Some(max)) = (field("count"), field("mean"), field("max"))
        else {
            return;
        };
        let count: u64 = count.parse().unwrap_or(0);
        let mean: u128 = mean.parse().unwrap_or(0);
        let max: u64 = max.parse().unwrap_or(0);
        self.reconv.0 += count;
        self.reconv.1 += mean * u128::from(count);
        self.reconv.2 = self.reconv.2.max(max);
        if let Some(b) = line.find('[').and_then(|i| {
            line[i + 1..]
                .strip_suffix(']')
                .map(|inner| inner.to_string())
        }) {
            for (i, tok) in b.split(',').enumerate() {
                let v: u64 = tok.trim().parse().unwrap_or(0);
                if self.reconv.3.len() <= i {
                    self.reconv.3.resize(i + 1, 0);
                }
                self.reconv.3[i] += v;
            }
        }
    }

    fn render_counts(m: &BTreeMap<String, u64>) -> String {
        if m.is_empty() {
            return "-".to_string();
        }
        m.iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    fn print(&self, name: &str) {
        let (count, sum, max, buckets) = &self.reconv;
        let mean = if *count == 0 {
            0
        } else {
            sum / u128::from(*count)
        };
        println!(
            "  {name:>5}: impaired {}\n         dropped  {}\n         reconvergence count={count} mean~{mean} max={max} buckets={buckets:?}",
            ChaosAgg::render_counts(&self.impairments),
            ChaosAgg::render_counts(&self.drops),
        );
        // Exact percentiles from the pooled raw samples — the log2
        // buckets above bound these only within a factor of two.
        println!(
            "         join-latency   count={} p50={} p99={}",
            self.join_samples.len(),
            telemetry::percentile_of(&self.join_samples, 50.0),
            telemetry::percentile_of(&self.join_samples, 99.0),
        );
        println!(
            "         reconvergence  count={} p50={} p99={}",
            self.reconv_samples.len(),
            telemetry::percentile_of(&self.reconv_samples, 50.0),
            telemetry::percentile_of(&self.reconv_samples, 99.0),
        );
    }
}

fn main() {
    let mut seeds: u64 = 50;
    let mut start: u64 = 0;
    let mut threads = par::default_threads();
    let mut corpus: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = 0;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threads" => {
                threads = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--threads needs a positive number");
                i += 2;
            }
            "--corpus" => {
                corpus = Some(argv.get(i + 1).expect("--corpus needs a directory").clone());
                i += 2;
            }
            s => {
                let n = s.parse().expect("SEEDS/START must be numbers");
                match positional {
                    0 => seeds = n,
                    1 => start = n,
                    _ => panic!("too many positional args; usage: explore [SEEDS] [START]"),
                }
                positional += 1;
                i += 1;
            }
        }
    }

    // Regression corpus first: if a committed artifact no longer replays
    // byte-identically, exploring fresh seeds is moot.
    let mut corpus_failures = 0u64;
    if let Some(dir) = &corpus {
        let results =
            replay_corpus(std::path::Path::new(dir)).expect("--corpus directory unreadable");
        for (name, r) in &results {
            match r {
                Ok(()) => println!("corpus {name}: replayed byte-identically"),
                Err(e) => {
                    corpus_failures += 1;
                    eprintln!("corpus {name}: REPLAY DIVERGED: {e}");
                }
            }
        }
        println!(
            "corpus: {}/{} artifacts replayed byte-identically",
            results.len() as u64 - corpus_failures,
            results.len()
        );
    }

    let zoo = topologies();
    // Fan the seeds out; each worker's runs depend only on its seed, and
    // reassembly is in seed order, so the report (and the exit code) is
    // independent of the thread count.
    let outcomes = par::run_trials(threads, seeds as usize, |t| {
        let seed = start + t as u64;
        let topo = &zoo[(seed % zoo.len() as u64) as usize];
        explore_seed(topo, seed)
    });

    let mut runs = 0u64;
    let mut violating = 0u64;
    let mut per_protocol = [0u64; 3];
    let mut chaos: [ChaosAgg; 3] = Default::default();
    for (t, results) in outcomes.iter().enumerate() {
        let seed = start + t as u64;
        let topo = &zoo[(seed % zoo.len() as u64) as usize];
        for (protocol, outcome) in results {
            runs += 1;
            let slot = Protocol::ALL.iter().position(|p| p == protocol).unwrap();
            chaos[slot].absorb(outcome);
            if outcome.violations.is_empty() {
                continue;
            }
            violating += 1;
            per_protocol[slot] += 1;
            // Deepest backward slice among the implicated nodes: how
            // long the causal chain behind this violation is (the
            // `trace why` rendering of the artifact walks it in full).
            let max_depth = outcome
                .violations
                .iter()
                .filter_map(|v| {
                    let n = v.node as u32;
                    outcome
                        .causal
                        .last_flag_transition(Some(n))
                        .or_else(|| outcome.causal.last_event_on(n))
                })
                .map(|id| outcome.causal.backward_chain(id).len())
                .max()
                .unwrap_or(0);
            eprintln!(
                "seed {seed} topology {} protocol {}: {} violation(s), \
                 max causal-slice depth {max_depth} \
                 [repro: ./scripts/trace.sh {} {} {seed}]",
                topo.name,
                protocol.name(),
                outcome.violations.len(),
                topo.name,
                protocol.name(),
            );
            let schedule = random_schedule(topo, seed, seed % 3 == 2);
            let artifact = Artifact::capture(topo, *protocol, &schedule, seed, outcome);
            eprintln!("--- replay artifact ---\n{}", artifact.to_text());
        }
    }

    println!(
        "explored {} schedules x 3 protocols: {runs} runs, {violating} violating",
        seeds
    );
    for (i, p) in Protocol::ALL.iter().enumerate() {
        println!("  {:>5}: {} violating runs", p.name(), per_protocol[i]);
    }
    println!("chaos summary (summed over the campaign):");
    for (i, p) in Protocol::ALL.iter().enumerate() {
        chaos[i].print(p.name());
    }
    if violating > 0 || corpus_failures > 0 {
        std::process::exit(1);
    }
}
