//! Command-line schedule explorer.
//!
//! ```text
//! explore [SEEDS] [START] [--threads N]
//! ```
//!
//! Runs `SEEDS` seeded schedules (default 50) starting at seed `START`
//! (default 0), each over one topology from the zoo (round-robin) and all
//! three protocols. Seeds fan out over a deterministic scoped-thread pool
//! (each run re-derives everything from its seed), and results are
//! reported in seed order — output is bit-identical for every `--threads`
//! value. Prints a per-protocol summary; on any oracle violation, prints
//! the full replay artifact and exits nonzero.

use scenario::{explore_seed, random_schedule, topologies, Artifact, Protocol};

fn main() {
    let mut seeds: u64 = 50;
    let mut start: u64 = 0;
    let mut threads = par::default_threads();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = 0;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threads" => {
                threads = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--threads needs a positive number");
                i += 2;
            }
            s => {
                let n = s.parse().expect("SEEDS/START must be numbers");
                match positional {
                    0 => seeds = n,
                    1 => start = n,
                    _ => panic!("too many positional args; usage: explore [SEEDS] [START]"),
                }
                positional += 1;
                i += 1;
            }
        }
    }

    let zoo = topologies();
    // Fan the seeds out; each worker's runs depend only on its seed, and
    // reassembly is in seed order, so the report (and the exit code) is
    // independent of the thread count.
    let outcomes = par::run_trials(threads, seeds as usize, |t| {
        let seed = start + t as u64;
        let topo = &zoo[(seed % zoo.len() as u64) as usize];
        explore_seed(topo, seed)
    });

    let mut runs = 0u64;
    let mut violating = 0u64;
    let mut per_protocol = [0u64; 3];
    for (t, results) in outcomes.iter().enumerate() {
        let seed = start + t as u64;
        let topo = &zoo[(seed % zoo.len() as u64) as usize];
        for (protocol, outcome) in results {
            runs += 1;
            if outcome.violations.is_empty() {
                continue;
            }
            violating += 1;
            let slot = Protocol::ALL.iter().position(|p| p == protocol).unwrap();
            per_protocol[slot] += 1;
            eprintln!(
                "seed {seed} topology {} protocol {}: {} violation(s)",
                topo.name,
                protocol.name(),
                outcome.violations.len()
            );
            let schedule = random_schedule(topo, seed, seed % 3 == 2);
            let artifact = Artifact::capture(topo, *protocol, &schedule, seed, outcome);
            eprintln!("--- replay artifact ---\n{}", artifact.to_text());
        }
    }

    println!(
        "explored {} schedules x 3 protocols: {runs} runs, {violating} violating",
        seeds
    );
    for (i, p) in Protocol::ALL.iter().enumerate() {
        println!("  {:>5}: {} violating runs", p.name(), per_protocol[i]);
    }
    if violating > 0 {
        std::process::exit(1);
    }
}
