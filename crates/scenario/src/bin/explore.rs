//! Command-line schedule explorer.
//!
//! ```text
//! explore [SEEDS] [START]
//! ```
//!
//! Runs `SEEDS` seeded schedules (default 50) starting at seed `START`
//! (default 0), each over one topology from the zoo (round-robin) and all
//! three protocols. Prints a per-protocol summary; on any oracle
//! violation, prints the full replay artifact and exits nonzero.

use scenario::{explore_seed, random_schedule, topologies, Artifact, Protocol};

fn main() {
    let mut args = std::env::args().skip(1);
    let seeds: u64 = args
        .next()
        .map(|s| s.parse().expect("SEEDS must be a number"))
        .unwrap_or(50);
    let start: u64 = args
        .next()
        .map(|s| s.parse().expect("START must be a number"))
        .unwrap_or(0);

    let zoo = topologies();
    let mut runs = 0u64;
    let mut violating = 0u64;
    let mut per_protocol = [0u64; 3];

    for seed in start..start + seeds {
        let topo = &zoo[(seed % zoo.len() as u64) as usize];
        let schedule = random_schedule(topo, seed, seed % 3 == 2);
        for (protocol, outcome) in explore_seed(topo, seed) {
            runs += 1;
            if outcome.violations.is_empty() {
                continue;
            }
            violating += 1;
            let slot = Protocol::ALL.iter().position(|&p| p == protocol).unwrap();
            per_protocol[slot] += 1;
            eprintln!(
                "seed {seed} topology {} protocol {}: {} violation(s)",
                topo.name,
                protocol.name(),
                outcome.violations.len()
            );
            let artifact = Artifact::capture(topo, protocol, &schedule, seed, &outcome);
            eprintln!("--- replay artifact ---\n{}", artifact.to_text());
        }
    }

    println!(
        "explored {} schedules x 3 protocols: {runs} runs, {violating} violating",
        seeds
    );
    for (i, p) in Protocol::ALL.iter().enumerate() {
        println!("  {:>5}: {} violating runs", p.name(), per_protocol[i]);
    }
    if violating > 0 {
        std::process::exit(1);
    }
}
