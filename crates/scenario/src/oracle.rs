//! Protocol-invariant oracles.
//!
//! After a fault schedule has fully healed and the network has quiesced,
//! these walk router state across the whole world and assert cross-node
//! invariants, reporting the offending node and entry on failure:
//!
//! * **RPF consistency** (PIM) — every tree entry's incoming interface and
//!   upstream neighbor agree with the router's own unicast RIB: (*,G) and
//!   RP-bit entries point along the unicast path toward the RP, (S,G)
//!   entries along the path toward the source.
//! * **Loop freedom** — upstream pointers (PIM) / parent pointers (CBT)
//!   form forests, never cycles, walking chains of a single destination
//!   class (toward-RP, toward-source, toward-core) across routers.
//! * **Delivery** — every host whose last membership event was a join
//!   received every probe packet sent after the heal.
//! * **No orphans** — once every member has left and all holdtimes have
//!   run out, no router retains (*,G)/(S,G)/tree state (the CBT core's
//!   own bare tree anchor is exempt: a core never quits its tree).
//! * **CBT ack ledger** — an on-tree router's parent link is mirrored by a
//!   child entry at the parent: hop-by-hop explicit acks must leave the
//!   two ends of every tree edge in agreement.
//! * **Hardening** — adversarial channel traffic never implants state:
//!   router state is bounded to the scenario's group, malformed-drop
//!   counters agree with the world's decode-failure ledger, and a clean
//!   channel produces zero decode failures.
//! * **Bounded queues** — no transmit queue's recorded peak ever exceeds
//!   the capacity bound a `bandwidth` fault configured for its link.
//! * **No control starvation** — with the control-priority class enabled
//!   (the DSL default), congestion may tail-drop data but must never
//!   tail-drop a control packet: the protocols' graceful degradation
//!   depends on joins, prunes, and acks surviving overload.
//! * **Congestion recovery** — if congestion occurred at all (any queue
//!   drop or nonzero queue peak), the post-heal probe train must still
//!   be fully delivered: overload may degrade service while it lasts,
//!   never after it clears.

use crate::net::{Protocol, ScenarioNet};
use cbt::CbtRouter;
use dvmrp::DvmrpRouter;
use netsim::{node_of_addr, NodeIdx};
use pim::PimRouter;
use std::collections::BTreeSet;
use std::fmt;
use wire::Addr;

/// One invariant violation, pinned to the router it was observed at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired.
    pub oracle: &'static str,
    /// The offending router (graph node index).
    pub node: usize,
    /// The offending entry / expectation, human-readable.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ r{}: {}", self.oracle, self.node, self.detail)
    }
}

fn violation(oracle: &'static str, node: usize, detail: String) -> Violation {
    Violation {
        oracle,
        node,
        detail,
    }
}

/// Routers that are up (crashed-and-never-restarted routers hold no
/// checkable state and take no part in the invariants).
fn up_routers(net: &ScenarioNet) -> Vec<usize> {
    (0..net.router_count)
        .filter(|&n| net.world.is_node_up(NodeIdx(n)))
        .collect()
}

// ---------------------------------------------------------------------
// RPF consistency (PIM)
// ---------------------------------------------------------------------

/// Every PIM entry's (iif, upstream) pair must match the router's current
/// RIB: toward the RP for (*,G) and RP-bit entries, toward the source for
/// SPT entries. DVMRP and CBT are exempt by construction — DVMRP computes
/// RPF per packet from the RIB and stores no iif, and CBT trees legally
/// diverge from the current unicast paths between join events.
pub fn check_rpf(net: &ScenarioNet) -> Vec<Violation> {
    let mut out = Vec::new();
    if net.protocol != Protocol::Pim {
        return out;
    }
    for n in up_routers(net) {
        let r = net.world.node::<PimRouter>(NodeIdx(n));
        let (engine, rib) = (r.engine(), r.rib());
        let my_addr = engine.addr();
        for (group, gs) in engine.groups() {
            let rp = gs.rp();
            let expect_toward = |dst: Addr| match rib.route(dst) {
                Some(e) => (Some(e.iface), Some(e.next_hop)),
                None => (None, None),
            };
            let mut check = |kind: &str, key: Addr, got: (Option<_>, Option<Addr>), dst: Addr| {
                let want = if dst == my_addr {
                    (None, None)
                } else {
                    expect_toward(dst)
                };
                if got != want {
                    out.push(violation(
                        "rpf-consistency",
                        n,
                        format!(
                            "{kind} entry ({key}, {group:?}): iif/upstream {got:?} \
                             disagree with rib {want:?} toward {dst}"
                        ),
                    ));
                }
            };
            if let Some(star) = &gs.star {
                if let Some(rp) = rp {
                    check("(*,G)", star.key, (star.iif, star.upstream), rp);
                }
            }
            for (&s, e) in &gs.sources {
                if e.local_source {
                    continue; // iif is the host LAN; not a RIB-visible path
                }
                if e.rp_bit {
                    if let Some(rp) = rp {
                        check("(S,G)RP-bit", s, (e.iif, e.upstream), rp);
                    }
                } else {
                    check("(S,G)", s, (e.iif, e.upstream), s);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Loop freedom
// ---------------------------------------------------------------------

/// Follow a chain of upstream/parent pointers from `start`, resolving each
/// hop with `next`, and report a violation if any router repeats.
fn walk_chain(
    oracle: &'static str,
    what: &str,
    start: usize,
    router_count: usize,
    next: impl Fn(usize) -> Option<Addr>,
    out: &mut Vec<Violation>,
) {
    let mut seen = BTreeSet::new();
    let mut at = start;
    seen.insert(at);
    while let Some(up) = next(at) {
        let Some(node) = node_of_addr(up) else { break };
        let nx = node.index();
        if nx >= router_count {
            break;
        }
        if !seen.insert(nx) {
            out.push(violation(
                oracle,
                start,
                format!("{what}: upstream chain revisits r{nx}"),
            ));
            return;
        }
        at = nx;
    }
}

/// No cycle in the upstream-pointer graph of any destination class:
/// PIM's toward-RP chain ((*,G) and RP-bit entries) and per-source SPT
/// chain, and CBT's parent chain toward the core. Each chain follows
/// pointers of its own class only, so a cycle is a genuine routing-state
/// inconsistency rather than an artifact of mixing tree types.
pub fn check_loop_freedom(net: &ScenarioNet) -> Vec<Violation> {
    let mut out = Vec::new();
    let up = up_routers(net);
    let is_up = |n: usize| net.world.is_node_up(NodeIdx(n));
    match net.protocol {
        Protocol::Pim => {
            let star_up = |n: usize| -> Option<Addr> {
                if !is_up(n) {
                    return None;
                }
                let e = net.world.node::<PimRouter>(NodeIdx(n)).engine();
                e.group_state(net.group)?.star.as_ref()?.upstream
            };
            let mut sources = BTreeSet::new();
            for &n in &up {
                let e = net.world.node::<PimRouter>(NodeIdx(n)).engine();
                if let Some(gs) = e.group_state(net.group) {
                    sources.extend(gs.sources.keys().copied());
                }
            }
            for &n in &up {
                walk_chain(
                    "loop-freedom",
                    "(*,G)",
                    n,
                    net.router_count,
                    star_up,
                    &mut out,
                );
                for &s in &sources {
                    let spt_up = |m: usize| -> Option<Addr> {
                        if !is_up(m) {
                            return None;
                        }
                        let e = net.world.node::<PimRouter>(NodeIdx(m)).engine();
                        let entry = e.group_state(net.group)?.sources.get(&s)?;
                        if entry.rp_bit || entry.local_source {
                            return None; // different class / chain terminus
                        }
                        entry.upstream
                    };
                    walk_chain(
                        "loop-freedom",
                        &format!("(S={s},G)"),
                        n,
                        net.router_count,
                        spt_up,
                        &mut out,
                    );
                }
            }
        }
        Protocol::Cbt => {
            let parent_of = |n: usize| -> Option<Addr> {
                if !is_up(n) {
                    return None;
                }
                let e = net.world.node::<CbtRouter>(NodeIdx(n)).engine();
                e.tree(net.group)?.parent.map(|(_, a)| a)
            };
            for &n in &up {
                walk_chain(
                    "loop-freedom",
                    "tree parent",
                    n,
                    net.router_count,
                    parent_of,
                    &mut out,
                );
            }
        }
        // DVMRP holds no upstream pointers: RPF is recomputed from the RIB
        // per packet, so the RIB's own loop freedom is the invariant.
        Protocol::Dvmrp => {}
    }
    out
}

// ---------------------------------------------------------------------
// Delivery
// ---------------------------------------------------------------------

/// Every member host (by slot) received every expected probe sequence
/// number from `source`. Duplicates are allowed — an SPT switchover
/// legitimately double-delivers during the transition — but gaps are not.
pub fn check_delivery(
    net: &ScenarioNet,
    members: &[u32],
    source: Addr,
    expected: &[u64],
) -> Vec<Violation> {
    let mut out = Vec::new();
    for &slot in members {
        let got: BTreeSet<u64> = net.seqs(slot as usize, source).into_iter().collect();
        let missing: Vec<u64> = expected
            .iter()
            .copied()
            .filter(|s| !got.contains(s))
            .collect();
        if !missing.is_empty() {
            let router = net.host_routers[slot as usize].index();
            out.push(violation(
                "delivery",
                router,
                format!(
                    "member slot {slot} missing seqs {missing:?} from {source} \
                     (got {} of {})",
                    expected.len() - missing.len(),
                    expected.len()
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// No orphaned state
// ---------------------------------------------------------------------

/// After every member has left and all holdtimes/lingers have expired, no
/// router may retain forwarding state. The CBT core's own bare tree
/// anchor (no parent, no children, no members) is exempt — a core never
/// quits its tree by design.
pub fn check_no_orphans(net: &ScenarioNet) -> Vec<Violation> {
    let mut out = Vec::new();
    for n in up_routers(net) {
        match net.protocol {
            Protocol::Pim => {
                let e = net.world.node::<PimRouter>(NodeIdx(n)).engine();
                for (group, gs) in e.groups() {
                    if let Some(star) = &gs.star {
                        out.push(violation(
                            "no-orphans",
                            n,
                            format!("(*,{group:?}) survives teardown: {:?}", star.oifs.keys()),
                        ));
                    }
                    for &s in gs.sources.keys() {
                        out.push(violation(
                            "no-orphans",
                            n,
                            format!("({s}, {group:?}) survives teardown"),
                        ));
                    }
                }
            }
            Protocol::Dvmrp => {
                let e = net.world.node::<DvmrpRouter>(NodeIdx(n)).engine();
                for (s, g) in e.entry_keys() {
                    out.push(violation(
                        "no-orphans",
                        n,
                        format!("({s}, {g:?}) survives its entry timeout"),
                    ));
                }
            }
            Protocol::Cbt => {
                let my_addr = net.world.node::<CbtRouter>(NodeIdx(n)).engine().addr();
                let e = net.world.node::<CbtRouter>(NodeIdx(n)).engine();
                for (g, t) in e.trees() {
                    let bare_core_anchor = t.core == my_addr
                        && t.parent.is_none()
                        && t.children.is_empty()
                        && t.member_ifaces.is_empty();
                    if !bare_core_anchor {
                        out.push(violation(
                            "no-orphans",
                            n,
                            format!(
                                "tree for {g:?} survives teardown (parent {:?}, \
                                 {} children, {} member ifaces)",
                                t.parent,
                                t.children.len(),
                                t.member_ifaces.len()
                            ),
                        ));
                    }
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// CBT ack ledger
// ---------------------------------------------------------------------

/// Hop-by-hop explicit acks must leave both ends of every CBT tree edge
/// in agreement: if an on-tree router records `(iface, parent)` as its
/// parent link, then `parent` must be the direct neighbor on that iface,
/// and the parent router must hold a matching child entry for this router
/// on its own side of the same link. Routers with a join still pending
/// are exempt — their edge is not yet acknowledged.
pub fn check_cbt_ack_ledger(net: &ScenarioNet) -> Vec<Violation> {
    let mut out = Vec::new();
    if net.protocol != Protocol::Cbt {
        return out;
    }
    for n in up_routers(net) {
        let e = net.world.node::<CbtRouter>(NodeIdx(n)).engine();
        let my_addr = e.addr();
        for (group, tree) in e.trees() {
            if !tree.on_tree || e.join_pending(group) {
                continue;
            }
            let Some((p_iface, p_addr)) = tree.parent else {
                continue; // the core: no parent by definition
            };
            let Some(peer) = net.peers[n].iter().find(|p| p.iface == p_iface) else {
                out.push(violation(
                    "cbt-ack-ledger",
                    n,
                    format!("parent iface {p_iface:?} is not a router-router link"),
                ));
                continue;
            };
            if peer.neighbor_addr != p_addr {
                out.push(violation(
                    "cbt-ack-ledger",
                    n,
                    format!(
                        "parent {p_addr} recorded on iface {p_iface:?}, but that \
                         link's neighbor is {}",
                        peer.neighbor_addr
                    ),
                ));
                continue;
            }
            let pn = peer.neighbor.index();
            if !net.world.is_node_up(NodeIdx(pn)) {
                continue; // parent crashed; echo timeout will flush us
            }
            let Some(back) = net.peers[pn].iter().find(|p| p.neighbor.index() == n) else {
                continue;
            };
            let pe = net.world.node::<CbtRouter>(NodeIdx(pn)).engine();
            let ledger_ok = pe
                .tree(group)
                .is_some_and(|pt| pt.children.contains_key(&(back.iface, my_addr)));
            if !ledger_ok {
                out.push(violation(
                    "cbt-ack-ledger",
                    n,
                    format!(
                        "on-tree with parent r{pn} for {group:?}, but r{pn} holds \
                         no child entry for {my_addr} on iface {:?}",
                        back.iface
                    ),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Hardening: bounded malformed state
// ---------------------------------------------------------------------

/// Adversarial traffic must never implant state. Two clauses, valid even
/// when malformed frames are injected directly into routers (the fuzz
/// harness) rather than arriving via a corrupting channel:
///
/// * **Bounded state** — every up router's multicast state refers only to
///   the scenario's own group: a corrupted or malformed control frame
///   must not conjure entries for groups nobody joined.
/// * **Drop bookkeeping** — each router's own `malformed_drops`
///   counter agrees with the world's per-node decode-failure ledger;
///   every undecodable frame is counted exactly once on both sides.
///
/// Aggregate scenarios (any host slot with population > 1) add a third
/// clause: **site-scaled state** — a router's entry count for the
/// scenario group is bounded by the number of host *sites* (one possible
/// source plus one tree entry per site, plus the shared tree), never by
/// the member population behind them. This is the paper's aggregation
/// argument made checkable: a million members behind fifty LANs must
/// cost the routers no more state than fifty explicit hosts. Explicit
/// scenarios skip the clause (adversarial schedules may legally implant
/// same-group source entries the fuzz corpus pins down separately), so
/// the classic checks are unchanged.
pub fn check_bounded_state(net: &ScenarioNet) -> Vec<Violation> {
    let mut out = Vec::new();
    let counters = net.world.counters();
    let aggregate = net.populations.iter().any(|&p| p > 1);
    // Worst-case entries per router for the scenario's single group:
    // every site a source (one (S,G) each) plus the shared (*,G) tree.
    let site_bound = net.hosts.len() + 1;
    for n in up_routers(net) {
        let idx = NodeIdx(n);
        let mut bad_groups: Vec<String> = Vec::new();
        let mut group_entries = 0usize;
        let malformed_drops = match net.protocol {
            Protocol::Pim => {
                let r = net.world.node::<PimRouter>(idx);
                for (g, gs) in r.engine().groups() {
                    if g != net.group {
                        bad_groups.push(format!("{g:?}"));
                    } else {
                        group_entries += usize::from(gs.star.is_some()) + gs.sources.len();
                    }
                }
                r.malformed_drops
            }
            Protocol::Dvmrp => {
                let r = net.world.node::<DvmrpRouter>(idx);
                for (s, g) in r.engine().entry_keys() {
                    if g != net.group {
                        bad_groups.push(format!("({s}, {g:?})"));
                    } else {
                        group_entries += 1;
                    }
                }
                r.malformed_drops
            }
            Protocol::Cbt => {
                let r = net.world.node::<CbtRouter>(idx);
                for (g, _) in r.engine().trees() {
                    if g != net.group {
                        bad_groups.push(format!("{g:?}"));
                    } else {
                        group_entries += 1;
                    }
                }
                r.malformed_drops
            }
        };
        if aggregate && group_entries > site_bound {
            out.push(violation(
                "hardening",
                n,
                format!(
                    "{group_entries} entries for the scenario group exceed the \
                     site-scaled bound {site_bound} ({} sites): state is scaling \
                     with members, not sites",
                    net.hosts.len()
                ),
            ));
        }
        if !bad_groups.is_empty() {
            out.push(violation(
                "hardening",
                n,
                format!(
                    "state for group(s) outside the scenario: {}",
                    bad_groups.join(", ")
                ),
            ));
        }
        let ledger = counters.decode_failures(idx);
        if malformed_drops != ledger {
            out.push(violation(
                "hardening",
                n,
                format!(
                    "malformed-drop counter {malformed_drops} disagrees with \
                     the world's decode-failure ledger {ledger}"
                ),
            ));
        }
    }
    out
}

/// The full decode-hardening oracle the explorer runs:
/// [`check_bounded_state`] plus **clean-channel silence** — if no
/// transmission was ever corrupted, no router may report a decode
/// failure, because decode failures may only originate from channel
/// corruption, never from well-formed peers. (The fuzz harness, which
/// injects malformed frames without a corrupting channel, checks
/// [`check_bounded_state`] alone.)
pub fn check_hardening(net: &ScenarioNet) -> Vec<Violation> {
    let mut out = check_bounded_state(net);
    let counters = net.world.counters();
    if counters.pkts_corrupted() == 0 && counters.total_decode_failures() > 0 {
        out.push(violation(
            "hardening",
            0,
            format!(
                "{} decode failure(s) on a channel that never corrupted a frame",
                counters.total_decode_failures()
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------
// Congestion: bounded queues, no starvation, recovery
// ---------------------------------------------------------------------

/// No transmit queue's peak may exceed the capacity bound configured for
/// its link. The counters track the high-water mark of both the backlog
/// and the configured bound, so the check is valid even after the
/// schedule has healed the cap away: a link that was ever capped keeps
/// its `queue_cap_bytes` ledger. Violations here mean the capacity model
/// itself leaked — admission control let a packet through past the bound.
pub fn check_bounded_queues(net: &ScenarioNet) -> Vec<Violation> {
    let mut out = Vec::new();
    for (link, stats) in net.world.counters().links() {
        if stats.queue_cap_bytes > 0 && stats.peak_queue_bytes > stats.queue_cap_bytes {
            out.push(violation(
                "bounded-queues",
                0,
                format!(
                    "link {} queue peaked at {} bytes, above its configured \
                     bound {}",
                    link.0, stats.peak_queue_bytes, stats.queue_cap_bytes
                ),
            ));
        }
    }
    out
}

/// Congestion must never starve the control plane: with the DSL's
/// control-priority class (the `bandwidth` fault's default), every
/// tail-drop charged to the control class is a violation. Joins, prunes,
/// registers, and acks are what let the protocols degrade gracefully —
/// losing them converts transient overload into persistent tree damage.
pub fn check_no_starvation(net: &ScenarioNet) -> Vec<Violation> {
    let mut out = Vec::new();
    for (link, stats) in net.world.counters().links() {
        if stats.queue_drops_ctrl > 0 {
            out.push(violation(
                "no-starvation",
                0,
                format!(
                    "link {} tail-dropped {} control packet(s) under congestion \
                     ({} data drops alongside)",
                    link.0, stats.queue_drops_ctrl, stats.queue_drops_data
                ),
            ));
        }
    }
    out
}

/// Graceful degradation's other half: once congestion clears, service
/// must come back. If the run congested at all (any queue drop or a
/// nonzero queue peak), every member must still have received the full
/// post-heal probe train — reported as `congestion-recovery` rather than
/// plain `delivery` so triage can tell "the tree never recovered from
/// overload" apart from ordinary fault-induced loss. Runs that never
/// congested return no violations (plain [`check_delivery`] already
/// covers them).
pub fn check_congestion_recovery(
    net: &ScenarioNet,
    members: &[u32],
    source: Addr,
    expected: &[u64],
) -> Vec<Violation> {
    let c = net.world.counters();
    let congested =
        c.queue_drops_data() > 0 || c.queue_drops_ctrl() > 0 || c.peak_queue_bytes() > 0;
    if !congested {
        return Vec::new();
    }
    check_delivery(net, members, source, expected)
        .into_iter()
        .map(|mut v| {
            v.oracle = "congestion-recovery";
            v
        })
        .collect()
}

// ---------------------------------------------------------------------
// Composites
// ---------------------------------------------------------------------

/// The structural invariants that must hold after any healed schedule,
/// regardless of final membership: RPF consistency, loop freedom, the
/// CBT ack ledger, the decode-hardening invariants, and the congestion
/// invariants (bounded queues, no control starvation) — the latter two
/// are free on uncongested runs, where every counter they read is zero.
pub fn check_structure(net: &ScenarioNet) -> Vec<Violation> {
    let mut out = check_rpf(net);
    out.extend(check_loop_freedom(net));
    out.extend(check_cbt_ack_ledger(net));
    out.extend(check_hardening(net));
    out.extend(check_bounded_queues(net));
    out.extend(check_no_starvation(net));
    out
}
