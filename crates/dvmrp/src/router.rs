//! The [`netsim`] adapter for the dense-mode baseline.
//!
//! [`DvmrpRouter`] is the generic [`node::ProtocolNode`] instantiated with
//! [`DvmrpEngine`] — the same adapter PIM and CBT use, so the overhead
//! experiments compare protocols, not adapters.

use crate::engine::{DvmrpEngine, Output};
use netsim::{IfaceId, SimTime};
use node::{Action, ProtocolEngine};
use unicast::Rib;
use wire::{Addr, Group, Message};

/// Data TTL used when (re)originating packets.
const DATA_TTL: u8 = 32;

/// A dense-mode (DVMRP-style) router node.
pub type DvmrpRouter = node::ProtocolNode<DvmrpEngine>;

/// Convert engine outputs into node actions, stamping `data_ttl` on data
/// forwards. DVMRP control chatter is always link-local (TTL 1).
fn actions(outs: Vec<Output>, data_ttl: u8) -> Vec<Action> {
    outs.into_iter()
        .map(|o| match o {
            Output::Send { iface, dst, msg } => Action::Control {
                iface,
                dst,
                ttl: 1,
                msg,
            },
            Output::Forward {
                ifaces,
                source,
                group,
                payload,
            } => Action::Forward {
                ifaces,
                source,
                group,
                ttl: data_ttl,
                payload,
            },
        })
        .collect()
}

impl ProtocolEngine for DvmrpEngine {
    fn addr(&self) -> Addr {
        DvmrpEngine::addr(self)
    }

    fn set_telemetry(&mut self, telem: telemetry::Telem) {
        DvmrpEngine::set_telemetry(self, telem);
    }

    fn on_control(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        src: Addr,
        _dst: Addr,
        msg: &Message,
        rib: &dyn Rib,
    ) -> Vec<Action> {
        match msg {
            Message::DvmrpProbe(p) => {
                self.on_probe(now, iface, src, p);
                Vec::new()
            }
            Message::DvmrpPrune(p) => actions(self.on_prune(now, iface, p), DATA_TTL),
            Message::DvmrpGraft(gr) => actions(self.on_graft(now, iface, gr, rib), DATA_TTL),
            Message::DvmrpGraftAck(a) => {
                self.on_graft_ack(now, a);
                Vec::new()
            }
            _ => Vec::new(),
        }
    }

    fn on_multicast_data(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        source: Addr,
        group: Group,
        ttl: u8,
        payload: &[u8],
        _from_host_lan: bool,
        rib: &dyn Rib,
    ) -> Vec<Action> {
        // Dense mode treats host and router arrivals alike: RPF-check and
        // broadcast-and-prune.
        actions(self.on_data(now, iface, source, group, payload, rib), ttl)
    }

    fn relays_unicast(&self) -> bool {
        false // dense mode drops non-multicast data
    }

    fn local_member_joined(
        &mut self,
        now: SimTime,
        group: Group,
        iface: IfaceId,
        rib: &dyn Rib,
    ) -> Vec<Action> {
        actions(
            DvmrpEngine::local_member_joined(self, now, group, iface, rib),
            DATA_TTL,
        )
    }

    fn local_member_left(&mut self, now: SimTime, group: Group, iface: IfaceId) -> Vec<Action> {
        DvmrpEngine::local_member_left(self, now, group, iface);
        Vec::new()
    }

    fn host_lan_attached(&mut self, iface: IfaceId) -> u32 {
        let mut grown = 0;
        while self.iface_count() <= iface.index() {
            self.add_iface();
            grown += 1;
        }
        self.set_host_lan(iface);
        grown
    }

    fn register_local_host(&mut self, host: Addr, iface: IfaceId) {
        DvmrpEngine::register_local_host(self, host, iface);
    }

    // Dense mode re-derives RPF lazily per packet; nothing to repair on
    // route changes — the default no-op `on_route_change` stands.

    fn reset(&mut self) {
        DvmrpEngine::reset(self);
    }

    fn tick(&mut self, now: SimTime, rib: &dyn Rib) -> Vec<Action> {
        actions(DvmrpEngine::tick(self, now, rib), DATA_TTL)
    }

    fn next_deadline(&self) -> Option<SimTime> {
        DvmrpEngine::next_deadline(self)
    }
}
