//! The [`netsim`] adapter for the dense-mode baseline — structurally a
//! twin of `pim::PimRouter`, so the overhead experiments compare protocols,
//! not adapters.

use crate::engine::{DvmrpEngine, Output};
use igmp::{Querier, QuerierOutput};
use netsim::{Ctx, Duration, IfaceId, Node, SimTime};
use std::any::Any;
use std::collections::HashMap;
use wire::ip::{Header, Protocol};
use wire::{Addr, Group, Message};

const TOKEN_TICK: u64 = 1;
const TICK_GRANULARITY: Duration = Duration(2);
const DATA_TTL: u8 = 32;

/// A dense-mode (DVMRP-style) router node.
pub struct DvmrpRouter {
    engine: DvmrpEngine,
    unicast: Box<dyn unicast::Engine>,
    queriers: HashMap<IfaceId, Querier>,
    /// Multicast data packets forwarded (processing overhead).
    pub data_forwards: u64,
    /// Control messages processed.
    pub control_msgs: u64,
    next_tick: SimTime,
}

impl DvmrpRouter {
    /// Build a router from its dense-mode engine and a unicast engine.
    pub fn new(engine: DvmrpEngine, unicast: Box<dyn unicast::Engine>) -> DvmrpRouter {
        DvmrpRouter {
            engine,
            unicast,
            queriers: HashMap::new(),
            data_forwards: 0,
            control_msgs: 0,
            next_tick: SimTime::ZERO,
        }
    }

    /// Declare `iface` host-facing, with the given attached hosts.
    pub fn attach_host_lan(&mut self, iface: IfaceId, hosts: &[Addr]) {
        while self.engine.iface_count() <= iface.index() {
            self.engine.add_iface();
            self.unicast.grow_iface(1);
        }
        self.engine.set_host_lan(iface);
        self.queriers
            .insert(iface, Querier::new(self.engine.addr(), igmp::Config::default()));
        for &h in hosts {
            self.engine.register_local_host(h, iface);
            self.unicast.attach_local(h, 1);
        }
    }

    /// The dense-mode engine (inspection).
    pub fn engine(&self) -> &DvmrpEngine {
        &self.engine
    }

    /// This router's address.
    pub fn addr(&self) -> Addr {
        self.engine.addr()
    }

    fn send_control(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, dst: Addr, msg: &Message) {
        let header = Header {
            proto: Protocol::Igmp,
            ttl: 1,
            src: self.engine.addr(),
            dst,
        };
        ctx.send(iface, header.encap(&msg.encode()));
    }

    fn handle_outputs(&mut self, ctx: &mut Ctx<'_>, outputs: Vec<Output>, data_ttl: u8) {
        for o in outputs {
            match o {
                Output::Send { iface, dst, msg } => {
                    self.send_control(ctx, iface, dst, &msg);
                }
                Output::Forward { ifaces, source, group, payload } => {
                    let header = Header {
                        proto: Protocol::Data,
                        ttl: data_ttl,
                        src: source,
                        dst: group.addr(),
                    };
                    let pkt = header.encap(&payload);
                    for i in ifaces {
                        self.data_forwards += 1;
                        if self.queriers.contains_key(&i) {
                            ctx.count_local_delivery();
                        }
                        ctx.send(i, pkt.clone());
                    }
                }
            }
        }
    }

    fn handle_unicast_outputs(&mut self, ctx: &mut Ctx<'_>, outputs: Vec<unicast::Output>) {
        for o in outputs {
            match o {
                unicast::Output::Send { iface, dst, msg } => {
                    self.send_control(ctx, iface, dst, &msg);
                }
                // Dense mode re-derives RPF lazily per packet; nothing to
                // repair on route changes.
                unicast::Output::RouteChanged { .. } => {}
            }
        }
    }

    fn handle_querier_outputs(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, outputs: Vec<QuerierOutput>) {
        let now = ctx.now();
        for o in outputs {
            match o {
                QuerierOutput::Send { dst, msg } => {
                    self.send_control(ctx, iface, dst, &msg);
                }
                QuerierOutput::MemberJoined(group) => {
                    let outs = self
                        .engine
                        .local_member_joined(now, group, iface, self.unicast.as_ref());
                    self.handle_outputs(ctx, outs, DATA_TTL);
                }
                QuerierOutput::MemberExpired(group) => {
                    self.engine.local_member_left(now, group, iface);
                }
                QuerierOutput::RpMappingLearned(..) => {} // dense mode has no RPs
            }
        }
    }
}

impl Node for DvmrpRouter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let outs = self.unicast.on_start(ctx.now());
        self.handle_unicast_outputs(ctx, outs);
        ctx.set_timer(Duration::ZERO, TOKEN_TICK);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
        let Ok((header, payload)) = Header::decap(packet) else {
            return;
        };
        let now = ctx.now();
        match header.proto {
            Protocol::Igmp => {
                let Ok(msg) = Message::decode(payload) else {
                    return;
                };
                self.control_msgs += 1;
                match &msg {
                    Message::HostQuery(_) | Message::HostReport(_) | Message::RpMapping(_) => {
                        if let Some(q) = self.queriers.get_mut(&iface) {
                            let outs = q.on_message(now, header.src, &msg);
                            self.handle_querier_outputs(ctx, iface, outs);
                        }
                    }
                    Message::DvmrpProbe(p) => self.engine.on_probe(now, iface, header.src, p),
                    Message::DvmrpPrune(p) => {
                        let outs = self.engine.on_prune(now, iface, p);
                        self.handle_outputs(ctx, outs, DATA_TTL);
                    }
                    Message::DvmrpGraft(gr) => {
                        let outs = self.engine.on_graft(now, iface, gr, self.unicast.as_ref());
                        self.handle_outputs(ctx, outs, DATA_TTL);
                    }
                    Message::DvmrpGraftAck(a) => self.engine.on_graft_ack(now, a),
                    Message::DvUpdate(_) | Message::Lsa(_) | Message::Hello(_) => {
                        let outs = self.unicast.on_message(now, iface, header.src, &msg);
                        self.handle_unicast_outputs(ctx, outs);
                    }
                    _ => {}
                }
            }
            Protocol::Data => {
                if !header.dst.is_multicast() {
                    return;
                }
                let Some(group) = Group::new(header.dst) else {
                    return;
                };
                let Some(fwd) = header.decrement_ttl() else {
                    return;
                };
                let outs =
                    self.engine
                        .on_data(now, iface, header.src, group, payload, self.unicast.as_ref());
                self.handle_outputs(ctx, outs, fwd.ttl);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_TICK {
            return;
        }
        let now = ctx.now();
        if now >= self.next_tick {
            self.next_tick = now + TICK_GRANULARITY;
            if self.unicast.tick_interval().ticks() != u64::MAX {
                let outs = self.unicast.tick(now);
                self.handle_unicast_outputs(ctx, outs);
            }
            let ifaces: Vec<IfaceId> = self.queriers.keys().copied().collect();
            for i in ifaces {
                let outs = self.queriers.get_mut(&i).expect("listed").tick(now);
                self.handle_querier_outputs(ctx, i, outs);
            }
            let outs = self.engine.tick(now, self.unicast.as_ref());
            self.handle_outputs(ctx, outs, DATA_TTL);
        }
        ctx.set_timer(TICK_GRANULARITY, TOKEN_TICK);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
