//! The sans-IO dense-mode engine.

use netsim::{Duration, IfaceId, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt::Write as _;
use telemetry::{flags, EntryKey, Event, StateDump, Telem};
use unicast::Rib;
use wire::dvmrp::{Graft, GraftAck, Probe, Prune};
use wire::{Addr, Group, Message};

/// Timers for the dense-mode protocol.
#[derive(Clone, Copy, Debug)]
pub struct DvmrpConfig {
    /// Lifetime carried in prunes; the pruned branch grows back after this
    /// (§1.1: "pruned branches will grow back after a time-out period").
    pub prune_lifetime: Duration,
    /// An (S,G) entry with no data for this long is deleted.
    pub entry_timeout: Duration,
    /// Retransmit an unacknowledged graft after this.
    pub graft_retransmit: Duration,
    /// Period between neighbor probes.
    pub probe_interval: Duration,
    /// A neighbor silent for this long is dropped.
    pub neighbor_timeout: Duration,
    /// Minimum spacing between repeated prunes for the same (S,G) (avoids
    /// a prune per data packet while pruned state is refreshed upstream).
    pub prune_damping: Duration,
}

impl Default for DvmrpConfig {
    fn default() -> Self {
        DvmrpConfig {
            prune_lifetime: Duration(200),
            entry_timeout: Duration(400),
            graft_retransmit: Duration(10),
            probe_interval: Duration(30),
            neighbor_timeout: Duration(105),
            prune_damping: Duration(50),
        }
    }
}

/// An action requested by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Output {
    /// Transmit a control message.
    Send {
        /// Interface to transmit on.
        iface: IfaceId,
        /// Header destination address.
        dst: Addr,
        /// The message.
        msg: Message,
    },
    /// Forward a data packet out of each listed interface.
    Forward {
        /// Interfaces to copy the packet to.
        ifaces: Vec<IfaceId>,
        /// Original source.
        source: Addr,
        /// Destination group.
        group: Group,
        /// Payload bytes.
        payload: Vec<u8>,
    },
}

/// Per-(S,G) dense-mode state.
#[derive(Clone, Debug)]
struct SgEntry {
    /// Downstream interfaces currently pruned, with grow-back deadline.
    pruned: BTreeMap<IfaceId, SimTime>,
    /// We have sent a prune upstream (we have no receivers); data arriving
    /// before the upstream prune takes effect is dropped silently.
    pruned_upstream: bool,
    /// Last time we sent an upstream prune (damping).
    last_prune_at: Option<SimTime>,
    /// Outstanding graft awaiting its ack, with next retransmit time.
    pending_graft: Option<SimTime>,
    /// Entry garbage collection deadline (refreshed by data).
    expires_at: SimTime,
}

impl SgEntry {
    fn new(expires_at: SimTime) -> SgEntry {
        SgEntry {
            pruned: BTreeMap::new(),
            pruned_upstream: false,
            last_prune_at: None,
            pending_graft: None,
            expires_at,
        }
    }
}

/// The dense-mode engine for one router.
pub struct DvmrpEngine {
    cfg: DvmrpConfig,
    my_addr: Addr,
    iface_count: usize,
    /// Interfaces that are host-facing leaf subnetworks.
    host_lans: HashSet<IfaceId>,
    /// Live DVMRP neighbors per interface (probe-maintained).
    neighbors: Vec<BTreeMap<Addr, SimTime>>,
    /// Local members per group per interface (IGMP-fed).
    members: HashMap<Group, HashSet<IfaceId>>,
    /// Directly attached hosts → their interface.
    local_hosts: HashMap<Addr, IfaceId>,
    entries: BTreeMap<(Addr, Group), SgEntry>,
    next_probe: SimTime,
    /// Structured-event emitter (disabled by default; pure observer).
    telem: Telem,
}

/// The telemetry flag bits an (S,G) entry currently carries. Dense mode
/// has no WC/RP/SPT notions; PRUNED tracks the upstream prune.
fn sg_flags(e: &SgEntry) -> u8 {
    if e.pruned_upstream {
        flags::PRUNED
    } else {
        0
    }
}

impl DvmrpEngine {
    /// New engine for a router with `iface_count` interfaces.
    pub fn new(my_addr: Addr, iface_count: usize, cfg: DvmrpConfig) -> DvmrpEngine {
        DvmrpEngine {
            cfg,
            my_addr,
            iface_count,
            host_lans: HashSet::new(),
            neighbors: vec![BTreeMap::new(); iface_count],
            members: HashMap::new(),
            local_hosts: HashMap::new(),
            entries: BTreeMap::new(),
            next_probe: SimTime::ZERO,
            telem: Telem::disabled(),
        }
    }

    /// Attach a telemetry handle. Emission never changes protocol
    /// behavior (DESIGN.md determinism rules).
    pub fn set_telemetry(&mut self, telem: Telem) {
        self.telem = telem;
    }

    /// The router's address.
    pub fn addr(&self) -> Addr {
        self.my_addr
    }

    /// Grow the interface table.
    pub fn add_iface(&mut self) -> IfaceId {
        self.iface_count += 1;
        self.neighbors.push(BTreeMap::new());
        IfaceId(self.iface_count as u32 - 1)
    }

    /// Number of interfaces.
    pub fn iface_count(&self) -> usize {
        self.iface_count
    }

    /// Mark `iface` host-facing (a candidate for truncation).
    pub fn set_host_lan(&mut self, iface: IfaceId) {
        self.host_lans.insert(iface);
    }

    /// Register a directly attached host.
    pub fn register_local_host(&mut self, host: Addr, iface: IfaceId) {
        self.local_hosts.insert(host, iface);
    }

    /// Number of (S,G) entries held (the state-overhead metric — note that
    /// dense mode accumulates these on *every* router data reaches).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Read-only check: is `iface` pruned for (source, group)?
    pub fn is_pruned(&self, source: Addr, group: Group, iface: IfaceId) -> bool {
        self.entries
            .get(&(source, group))
            .is_some_and(|e| e.pruned.contains_key(&iface))
    }

    /// Have we pruned ourselves off (source, group) upstream?
    pub fn pruned_upstream(&self, source: Addr, group: Group) -> bool {
        self.entries
            .get(&(source, group))
            .is_some_and(|e| e.pruned_upstream)
    }

    /// Iterate the (source, group) keys of all held (S,G) entries — the
    /// state-inspection hook for cross-node invariant oracles (orphan
    /// detection after prune + timeout).
    pub fn entry_keys(&self) -> impl Iterator<Item = (Addr, Group)> + '_ {
        self.entries.keys().copied()
    }

    /// Local members known on `iface` for any group? (oracle hook)
    pub fn member_groups(&self) -> impl Iterator<Item = Group> + '_ {
        self.members
            .iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(&g, _)| g)
    }

    /// Crash with total state loss: forwarding entries, neighbor liveness,
    /// and IGMP-fed membership are erased; interface roles and attached
    /// hosts are configuration and survive.
    pub fn reset(&mut self) {
        for n in self.neighbors.iter_mut() {
            n.clear();
        }
        self.members.clear();
        self.entries.clear();
        self.next_probe = SimTime::ZERO;
    }

    fn has_member(&self, group: Group, iface: IfaceId) -> bool {
        self.members.get(&group).is_some_and(|s| s.contains(&iface))
    }

    fn has_any_member(&self, group: Group) -> bool {
        self.members.get(&group).is_some_and(|s| !s.is_empty())
    }

    /// IGMP reported a first member of `group` on `iface`. If any (S,G)
    /// for the group is pruned upstream, graft back on (and un-prune the
    /// member interface downstreams).
    pub fn local_member_joined(
        &mut self,
        now: SimTime,
        group: Group,
        iface: IfaceId,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        self.members.entry(group).or_default().insert(iface);
        let mut out = Vec::new();
        let keys: Vec<(Addr, Group)> = self
            .entries
            .keys()
            .filter(|(_, g)| *g == group)
            .copied()
            .collect();
        for (source, _) in keys {
            let e = self.entries.get_mut(&(source, group)).expect("key listed");
            if e.pruned_upstream {
                let from = sg_flags(e);
                e.pruned_upstream = false;
                self.telem.emit(now.ticks(), || Event::EntryModified {
                    group,
                    key: EntryKey::Source(source),
                    from,
                    to: from & !flags::PRUNED,
                });
                e.pending_graft = Some(now + self.cfg.graft_retransmit);
                if let Some(r) = rib.route(source) {
                    out.push(Output::Send {
                        iface: r.iface,
                        dst: r.next_hop,
                        msg: Message::DvmrpGraft(Graft { source, group }),
                    });
                }
            }
        }
        out
    }

    /// The last member of `group` on `iface` lapsed.
    pub fn local_member_left(&mut self, _now: SimTime, group: Group, iface: IfaceId) {
        if let Some(s) = self.members.get_mut(&group) {
            s.remove(&iface);
        }
        // Prunes happen lazily on the next data packet (data-driven).
    }

    /// The forwarding rule: all interfaces except the arrival interface,
    /// minus pruned branches, minus leaf subnetworks with no members
    /// (truncated broadcast), minus router-less interfaces with no members.
    fn flood_set(&self, source: Addr, group: Group, arrival: IfaceId) -> Vec<IfaceId> {
        let entry = self.entries.get(&(source, group));
        (0..self.iface_count)
            .map(|i| IfaceId(i as u32))
            .filter(|&i| i != arrival)
            .filter(|&i| {
                if let Some(e) = entry {
                    if e.pruned.contains_key(&i) {
                        return false;
                    }
                }
                if self.host_lans.contains(&i) {
                    // Leaf subnetwork: truncate unless members present.
                    self.has_member(group, i)
                } else {
                    // Router link: flood only if a neighbor lives there.
                    !self.neighbors[i.index()].is_empty()
                }
            })
            .collect()
    }

    /// A multicast data packet arrived on `iface` (router side or host
    /// side — dense mode treats a local source's subnetwork as just
    /// another RPF interface).
    pub fn on_data(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        source: Addr,
        group: Group,
        payload: &[u8],
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let mut out = Vec::new();
        // RPF check: accept only on the interface we'd use to reach S
        // (or the host LAN the source lives on).
        let rpf_ok = match self.local_hosts.get(&source) {
            Some(&h) => h == iface,
            None => rib.rpf_iface(source) == Some(iface),
        };
        if !rpf_ok {
            return out;
        }
        let expires = now + self.cfg.entry_timeout;
        if !self.entries.contains_key(&(source, group)) {
            self.telem.emit(now.ticks(), || Event::EntryCreated {
                group,
                key: EntryKey::Source(source),
                flags: 0,
            });
        }
        let entry = self
            .entries
            .entry((source, group))
            .or_insert_with(|| SgEntry::new(expires));
        entry.expires_at = expires;
        // Grow back lapsed prunes.
        let lapsed: Vec<IfaceId> = entry
            .pruned
            .iter()
            .filter(|(_, &t)| now >= t)
            .map(|(&i, _)| i)
            .collect();
        for i in lapsed {
            entry.pruned.remove(&i);
        }

        let ifaces = self.flood_set(source, group, iface);
        let no_receivers = ifaces.is_empty() && !self.has_any_member(group);
        if no_receivers && self.local_hosts.get(&source) != Some(&iface) {
            // "It will send a prune message upstream toward the source"
            // (§1.1), damped.
            let entry = self.entries.get_mut(&(source, group)).expect("inserted");
            let due = entry
                .last_prune_at
                .is_none_or(|t| now.since(t) >= self.cfg.prune_damping);
            if due {
                entry.last_prune_at = Some(now);
                if !entry.pruned_upstream {
                    let from = sg_flags(entry);
                    entry.pruned_upstream = true;
                    self.telem.emit(now.ticks(), || Event::EntryModified {
                        group,
                        key: EntryKey::Source(source),
                        from,
                        to: from | flags::PRUNED,
                    });
                }
                if let Some(r) = rib.route(source) {
                    out.push(Output::Send {
                        iface: r.iface,
                        dst: r.next_hop,
                        msg: Message::DvmrpPrune(Prune {
                            source,
                            group,
                            lifetime: self.cfg.prune_lifetime.ticks().min(u32::MAX as u64) as u32,
                        }),
                    });
                }
            }
            return out;
        }
        if !ifaces.is_empty() {
            out.push(Output::Forward {
                ifaces,
                source,
                group,
                payload: payload.to_vec(),
            });
        }
        out
    }

    /// A prune arrived from a downstream router on `iface`.
    pub fn on_prune(&mut self, now: SimTime, iface: IfaceId, p: &Prune) -> Vec<Output> {
        let expires = now + self.cfg.entry_timeout;
        if !self.entries.contains_key(&(p.source, p.group)) {
            self.telem.emit(now.ticks(), || Event::EntryCreated {
                group: p.group,
                key: EntryKey::Source(p.source),
                flags: 0,
            });
        }
        let entry = self
            .entries
            .entry((p.source, p.group))
            .or_insert_with(|| SgEntry::new(expires));
        entry
            .pruned
            .insert(iface, now + Duration(p.lifetime as u64));
        Vec::new()
    }

    /// A graft arrived from a downstream router on `iface`: un-prune the
    /// branch, ack it, and cascade our own graft upstream if we had pruned.
    pub fn on_graft(
        &mut self,
        now: SimTime,
        iface: IfaceId,
        gr: &Graft,
        rib: &dyn Rib,
    ) -> Vec<Output> {
        let mut out = vec![Output::Send {
            iface,
            dst: Addr::ALL_PIM_ROUTERS, // link-local; the grafting router hears it
            msg: Message::DvmrpGraftAck(GraftAck {
                source: gr.source,
                group: gr.group,
            }),
        }];
        if let Some(e) = self.entries.get_mut(&(gr.source, gr.group)) {
            e.pruned.remove(&iface);
            if e.pruned_upstream {
                let from = sg_flags(e);
                e.pruned_upstream = false;
                self.telem.emit(now.ticks(), || Event::EntryModified {
                    group: gr.group,
                    key: EntryKey::Source(gr.source),
                    from,
                    to: from & !flags::PRUNED,
                });
                e.pending_graft = Some(now + self.cfg.graft_retransmit);
                if let Some(r) = rib.route(gr.source) {
                    out.push(Output::Send {
                        iface: r.iface,
                        dst: r.next_hop,
                        msg: Message::DvmrpGraft(Graft {
                            source: gr.source,
                            group: gr.group,
                        }),
                    });
                }
            }
        }
        out
    }

    /// A graft ack arrived: stop retransmitting.
    pub fn on_graft_ack(&mut self, _now: SimTime, ack: &GraftAck) {
        if let Some(e) = self.entries.get_mut(&(ack.source, ack.group)) {
            e.pending_graft = None;
        }
    }

    /// A neighbor probe arrived on `iface`.
    pub fn on_probe(&mut self, now: SimTime, iface: IfaceId, src: Addr, _p: &Probe) {
        self.neighbors[iface.index()].insert(src, now + self.cfg.neighbor_timeout);
    }

    /// The absolute time of this engine's next pending timer: the probe
    /// schedule, neighbor timeouts, graft retransmits, and entry GC.
    /// Prune-lifetime lapses are deliberately excluded — grow-back is
    /// evaluated lazily on the next data packet, so no wakeup is needed.
    pub fn next_deadline(&self) -> Option<SimTime> {
        let mut best = Some(self.next_probe);
        for nb in &self.neighbors {
            best = netsim::earliest(best, nb.values().copied().min());
        }
        for e in self.entries.values() {
            best = netsim::earliest(best, Some(e.expires_at));
            best = netsim::earliest(best, e.pending_graft);
        }
        best
    }

    /// Periodic maintenance: probes, neighbor expiry, graft retransmits,
    /// entry GC.
    pub fn tick(&mut self, now: SimTime, rib: &dyn Rib) -> Vec<Output> {
        let mut out = Vec::new();
        if now >= self.next_probe {
            self.next_probe = now + self.cfg.probe_interval;
            for i in 0..self.iface_count {
                let iface = IfaceId(i as u32);
                if self.host_lans.contains(&iface) {
                    continue;
                }
                let neighbors: Vec<Addr> = self.neighbors[i].keys().copied().collect();
                out.push(Output::Send {
                    iface,
                    dst: Addr::ALL_PIM_ROUTERS,
                    msg: Message::DvmrpProbe(Probe { neighbors }),
                });
            }
        }
        for nb in &mut self.neighbors {
            nb.retain(|_, &mut t| now < t);
        }
        // Graft retransmission (the one acked DVMRP exchange).
        let keys: Vec<(Addr, Group)> = self.entries.keys().copied().collect();
        for key in keys {
            let e = self.entries.get_mut(&key).expect("key listed");
            if let Some(at) = e.pending_graft {
                if now >= at {
                    e.pending_graft = Some(now + self.cfg.graft_retransmit);
                    if let Some(r) = rib.route(key.0) {
                        out.push(Output::Send {
                            iface: r.iface,
                            dst: r.next_hop,
                            msg: Message::DvmrpGraft(Graft {
                                source: key.0,
                                group: key.1,
                            }),
                        });
                    }
                }
            }
        }
        if self.telem.is_enabled() {
            for (&(source, group), e) in self.entries.iter() {
                if now >= e.expires_at {
                    self.telem.emit(now.ticks(), || Event::EntryExpired {
                        group,
                        key: EntryKey::Source(source),
                    });
                }
            }
        }
        self.entries.retain(|_, e| now < e.expires_at);
        out
    }
}

impl StateDump for DvmrpEngine {
    /// `show mroute`-style snapshot: per-interface DVMRP neighbors, local
    /// membership, then every (S,G) entry with its pruned branch set,
    /// upstream prune/graft state, and GC deadline.
    fn state_dump(&self, now: telemetry::Ticks) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "dvmrp {} t{}", self.my_addr, now);
        for (i, nb) in self.neighbors.iter().enumerate() {
            if nb.is_empty() {
                continue;
            }
            let nbrs: Vec<String> = nb
                .iter()
                .map(|(a, exp)| format!("{a}/t{}", exp.ticks()))
                .collect();
            let _ = writeln!(s, "  if{i} nbrs=[{}]", nbrs.join(","));
        }
        let mut member_groups: Vec<Group> = self
            .members
            .iter()
            .filter(|(_, set)| !set.is_empty())
            .map(|(&g, _)| g)
            .collect();
        member_groups.sort();
        for g in member_groups {
            let mut ifs: Vec<u32> = self.members[&g].iter().map(|i| i.index() as u32).collect();
            ifs.sort_unstable();
            let ifs: Vec<String> = ifs.into_iter().map(|i| format!("if{i}")).collect();
            let _ = writeln!(s, "  members {g} on [{}]", ifs.join(","));
        }
        for (&(source, group), e) in &self.entries {
            let _ = write!(
                s,
                "    ({source}, {group}) flags={} expires=t{}",
                flags::render(sg_flags(e)),
                e.expires_at.ticks()
            );
            if let Some(t) = e.pending_graft {
                let _ = write!(s, " graft-retx=t{}", t.ticks());
            }
            let _ = writeln!(s);
            for (&i, &t) in &e.pruned {
                let _ = writeln!(s, "      pruned {} until=t{}", i.index(), t.ticks());
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unicast::{OracleRib, RouteEntry};

    fn me() -> Addr {
        Addr::new(10, 0, 1, 1)
    }
    fn up() -> Addr {
        Addr::new(10, 0, 0, 1)
    }
    fn src() -> Addr {
        Addr::new(10, 0, 0, 10)
    }
    fn g() -> Group {
        Group::test(3)
    }
    fn t(x: u64) -> SimTime {
        SimTime(x)
    }

    /// Engine with iface 0 = upstream (toward src), ifaces 1,2 = downstream
    /// router links, iface 3 = host LAN.
    fn engine_with_neighbors() -> (DvmrpEngine, OracleRib) {
        let mut e = DvmrpEngine::new(me(), 4, DvmrpConfig::default());
        e.set_host_lan(IfaceId(3));
        // Downstream neighbors on 1 and 2 (and our upstream on 0).
        e.on_probe(t(0), IfaceId(0), up(), &Probe { neighbors: vec![] });
        e.on_probe(
            t(0),
            IfaceId(1),
            Addr::new(10, 0, 2, 1),
            &Probe { neighbors: vec![] },
        );
        e.on_probe(
            t(0),
            IfaceId(2),
            Addr::new(10, 0, 3, 1),
            &Probe { neighbors: vec![] },
        );
        let mut rib = OracleRib::empty(me());
        rib.insert(
            src(),
            RouteEntry {
                iface: IfaceId(0),
                next_hop: up(),
                metric: 1,
            },
        );
        (e, rib)
    }

    #[test]
    fn floods_to_router_links_truncates_memberless_leaves() {
        let (mut e, rib) = engine_with_neighbors();
        let out = e.on_data(t(1), IfaceId(0), src(), g(), b"d", &rib);
        // Host LAN (3) has no members: truncated. Routers on 1,2 get it.
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(1), IfaceId(2)]
        ));
        assert_eq!(e.entry_count(), 1);
    }

    #[test]
    fn member_leaf_receives() {
        let (mut e, rib) = engine_with_neighbors();
        e.local_member_joined(t(0), g(), IfaceId(3), &rib);
        let out = e.on_data(t(1), IfaceId(0), src(), g(), b"d", &rib);
        assert!(matches!(
            &out[0],
            Output::Forward { ifaces, .. }
                if ifaces == &vec![IfaceId(1), IfaceId(2), IfaceId(3)]
        ));
    }

    #[test]
    fn rpf_check_drops_wrong_interface() {
        let (mut e, rib) = engine_with_neighbors();
        let out = e.on_data(t(1), IfaceId(1), src(), g(), b"d", &rib);
        assert!(out.is_empty(), "non-RPF arrival must be dropped");
        assert_eq!(e.entry_count(), 0);
    }

    #[test]
    fn prune_removes_branch_until_growback() {
        let (mut e, rib) = engine_with_neighbors();
        e.on_data(t(1), IfaceId(0), src(), g(), b"d", &rib);
        e.on_prune(
            t(2),
            IfaceId(1),
            &Prune {
                source: src(),
                group: g(),
                lifetime: 100,
            },
        );
        assert!(e.is_pruned(src(), g(), IfaceId(1)));
        let out = e.on_data(t(3), IfaceId(0), src(), g(), b"d", &rib);
        assert!(matches!(
            &out[0],
            Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(2)]
        ));
        // After the lifetime, the branch grows back (§1.1).
        let out = e.on_data(t(103), IfaceId(0), src(), g(), b"d", &rib);
        assert!(matches!(
            &out[0],
            Output::Forward { ifaces, .. } if ifaces == &vec![IfaceId(1), IfaceId(2)]
        ));
    }

    #[test]
    fn leaf_router_prunes_upstream_when_no_receivers() {
        // Only the upstream link has a neighbor: we're a leaf router.
        let mut e = DvmrpEngine::new(me(), 2, DvmrpConfig::default());
        e.set_host_lan(IfaceId(1));
        e.on_probe(t(0), IfaceId(0), up(), &Probe { neighbors: vec![] });
        let mut rib = OracleRib::empty(me());
        rib.insert(
            src(),
            RouteEntry {
                iface: IfaceId(0),
                next_hop: up(),
                metric: 1,
            },
        );

        let out = e.on_data(t(1), IfaceId(0), src(), g(), b"d", &rib);
        assert!(matches!(
            &out[0],
            Output::Send { iface, dst, msg: Message::DvmrpPrune(p) }
                if *iface == IfaceId(0) && *dst == up() && p.source == src()
        ));
        assert!(e.pruned_upstream(src(), g()));
        // Damping: an immediate second packet does not re-prune.
        let out = e.on_data(t(2), IfaceId(0), src(), g(), b"d", &rib);
        assert!(out.is_empty());
        // After the damping interval it may re-prune (upstream grow-back).
        let out = e.on_data(t(60), IfaceId(0), src(), g(), b"d", &rib);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn member_join_grafts_pruned_branch() {
        let mut e = DvmrpEngine::new(me(), 2, DvmrpConfig::default());
        e.set_host_lan(IfaceId(1));
        e.on_probe(t(0), IfaceId(0), up(), &Probe { neighbors: vec![] });
        let mut rib = OracleRib::empty(me());
        rib.insert(
            src(),
            RouteEntry {
                iface: IfaceId(0),
                next_hop: up(),
                metric: 1,
            },
        );
        e.on_data(t(1), IfaceId(0), src(), g(), b"d", &rib); // prunes upstream

        let out = e.local_member_joined(t(10), g(), IfaceId(1), &rib);
        assert!(matches!(
            &out[0],
            Output::Send { msg: Message::DvmrpGraft(gr), .. }
                if gr.source == src() && gr.group == g()
        ));
        assert!(!e.pruned_upstream(src(), g()));
        // Unacked graft retransmits on tick...
        let out = e.tick(t(25), &rib);
        assert!(out.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Message::DvmrpGraft(_),
                ..
            }
        )));
        // ...until the ack arrives.
        e.on_graft_ack(
            t(26),
            &GraftAck {
                source: src(),
                group: g(),
            },
        );
        let out = e.tick(t(50), &rib);
        assert!(!out.iter().any(|o| matches!(
            o,
            Output::Send {
                msg: Message::DvmrpGraft(_),
                ..
            }
        )));
    }

    #[test]
    fn graft_from_downstream_unprunes_and_acks() {
        let (mut e, rib) = engine_with_neighbors();
        e.on_data(t(1), IfaceId(0), src(), g(), b"d", &rib);
        e.on_prune(
            t(2),
            IfaceId(1),
            &Prune {
                source: src(),
                group: g(),
                lifetime: 100,
            },
        );
        let out = e.on_graft(
            t(5),
            IfaceId(1),
            &Graft {
                source: src(),
                group: g(),
            },
            &rib,
        );
        assert!(matches!(
            &out[0],
            Output::Send { iface, msg: Message::DvmrpGraftAck(_), .. } if *iface == IfaceId(1)
        ));
        assert!(!e.is_pruned(src(), g(), IfaceId(1)));
    }

    #[test]
    fn graft_cascades_upstream() {
        let mut e = DvmrpEngine::new(me(), 2, DvmrpConfig::default());
        e.on_probe(t(0), IfaceId(0), up(), &Probe { neighbors: vec![] });
        e.on_probe(
            t(0),
            IfaceId(1),
            Addr::new(10, 0, 2, 1),
            &Probe { neighbors: vec![] },
        );
        let mut rib = OracleRib::empty(me());
        rib.insert(
            src(),
            RouteEntry {
                iface: IfaceId(0),
                next_hop: up(),
                metric: 1,
            },
        );
        // Downstream pruned, so we pruned upstream too.
        e.on_data(t(1), IfaceId(0), src(), g(), b"d", &rib);
        e.on_prune(
            t(2),
            IfaceId(1),
            &Prune {
                source: src(),
                group: g(),
                lifetime: 100,
            },
        );
        e.on_data(t(60), IfaceId(0), src(), g(), b"d", &rib);
        assert!(e.pruned_upstream(src(), g()));
        // Downstream grafts: we must cascade.
        let out = e.on_graft(
            t(70),
            IfaceId(1),
            &Graft {
                source: src(),
                group: g(),
            },
            &rib,
        );
        assert!(out.iter().any(|o| matches!(
            o,
            Output::Send { iface, msg: Message::DvmrpGraft(_), .. } if *iface == IfaceId(0)
        )));
    }

    #[test]
    fn entries_gc_without_data() {
        let (mut e, rib) = engine_with_neighbors();
        e.on_data(t(1), IfaceId(0), src(), g(), b"d", &rib);
        assert_eq!(e.entry_count(), 1);
        e.tick(t(500), &rib);
        assert_eq!(e.entry_count(), 0, "entries must lapse without traffic");
    }

    #[test]
    fn local_source_floods_from_host_lan() {
        let (mut e, rib) = engine_with_neighbors();
        let local_src = Addr::new(10, 0, 1, 10);
        e.register_local_host(local_src, IfaceId(3));
        let out = e.on_data(t(1), IfaceId(3), local_src, g(), b"d", &rib);
        assert!(matches!(
            &out[0],
            Output::Forward { ifaces, .. }
                if ifaces == &vec![IfaceId(0), IfaceId(1), IfaceId(2)]
        ));
    }
}
