//! A DVMRP-style dense-mode multicast routing protocol — the paper's §1.1
//! baseline.
//!
//! Dense mode is the mirror image of PIM sparse mode: "membership is
//! assumed and multicast data packets are sent until routers without local
//! (or downstream) members send explicit prune messages to remove
//! themselves from the distribution tree" (§3). Concretely:
//!
//! * **Truncated reverse-path broadcast**: the first packet from source S
//!   is flooded out of every interface except the RPF interface toward S —
//!   except leaf subnetworks with no members of G (truncation, §1.1).
//! * **Prune**: a router with no members and no downstream receivers sends
//!   a prune toward S; pruned branches carry a lifetime and "grow back
//!   after a time-out period", at which point flooding resumes (the
//!   periodic re-broadcast the paper criticizes).
//! * **Graft**: when a member appears behind a pruned branch, a graft
//!   re-attaches it immediately. Grafts are acknowledged hop-by-hop (a
//!   lost graft would silence the new member until the next grow-back).
//!
//! Like PIM, this engine takes its RPF information from the [`unicast::Rib`]
//! trait (the original DVMRP embedded its own RIP; ours reuses the
//! workspace's unicast engines, which changes nothing observable about the
//! multicast behavior being measured).
//!
//! The dense-mode overhead the paper measures is visible directly in this
//! implementation: every router in the network ends up holding (S,G) state
//! and processing data packets during each flood epoch, whether or not it
//! leads to members.

#![warn(missing_docs)]

pub mod engine;
pub mod router;

pub use engine::{DvmrpConfig, DvmrpEngine, Output};
pub use router::DvmrpRouter;
