//! Property tests for the causal-provenance layer (DESIGN.md §11): the
//! [`telemetry::CausalIndex`] built from a run must be a DAG whose
//! parents precede their children in canonical-key order, and backward
//! slices must be byte-identical across partitionings — single region,
//! delay-aware auto-partition, and an adversarial one-node-per-region
//! split. Provenance, like every other observable, must not know how
//! the world was sharded.

use netsim::{Ctx, Duration, IfaceId, Node, NodeIdx, SimTime, World};
use proptest::prelude::*;
use std::any::Any;
use std::sync::{Arc, Mutex};
use telemetry::{CausalIndex, Event, Telem};
use wire::{Addr, Group};

/// A node that narrates its own activity through telemetry: membership
/// on start, entry-flag transitions and timer events on every firing,
/// data deliveries on every reception. Gives the causal index real
/// records to slice, not just silent dispatch edges.
struct Narrator {
    telem: Telem,
    flags: u8,
}

impl Narrator {
    fn new() -> Self {
        Narrator {
            telem: Telem::disabled(),
            flags: 0,
        }
    }

    fn group(ctx: &Ctx<'_>) -> Group {
        Group::test(ctx.me().0 as u32)
    }
}

impl Node for Narrator {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let g = Self::group(ctx);
        self.telem
            .emit(ctx.now().ticks(), || Event::LocalMemberJoined { group: g });
        ctx.set_timer(Duration(3), 1);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
        let g = Self::group(ctx);
        let src = Addr(u32::from(packet[0]));
        self.telem.emit(ctx.now().ticks(), || Event::DataDelivered {
            group: g,
            source: src,
        });
        let from = self.flags;
        self.flags = self.flags.wrapping_add(1) & 0x7;
        let to = self.flags;
        self.telem.emit(ctx.now().ticks(), || Event::EntryModified {
            group: g,
            key: telemetry::EntryKey::Star,
            from,
            to,
        });
        let _ = iface;
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        self.telem
            .emit(ctx.now().ticks(), || Event::TimerFired { token });
        let me = ctx.me().0 as u8;
        for i in 0..ctx.iface_count() {
            ctx.send(IfaceId(i as u32), vec![me, 0x5A]);
        }
        if ctx.now() < SimTime(180) {
            ctx.set_timer(Duration(7), token);
        }
    }

    fn set_telemetry(&mut self, telem: Telem) {
        self.telem = telem;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[derive(Clone, Debug)]
enum Split {
    Single,
    Auto(usize),
    Explicit(Vec<u32>),
}

/// Run the 6-node fixture (line 0-1-2-3 plus LAN {1,4,5}) under `split`
/// and fold the full telemetry stream into a causal index.
fn run(seed: u64, delays: &[u64; 3], loss: f64, faults: bool, split: &Split) -> CausalIndex {
    let mut w = World::new(seed);
    let nodes: Vec<NodeIdx> = (0..6)
        .map(|_| w.add_node(Box::new(Narrator::new())))
        .collect();
    let mut links = Vec::new();
    for (i, &d) in delays.iter().enumerate() {
        let (l, _, _) = w.add_p2p(nodes[i], nodes[i + 1], Duration(d));
        links.push(l);
    }
    let (lan, _) = w.add_lan(&[nodes[1], nodes[4], nodes[5]], Duration(1));
    if loss > 0.0 {
        w.set_link_loss(links[1], loss);
        w.set_link_loss(lan, loss / 2.0);
    }
    if faults {
        let n2 = nodes[2];
        w.at(SimTime(60), move |w| {
            w.emit_event(
                n2,
                Event::Fault {
                    desc: "crash r2".into(),
                },
            );
            w.crash_node(n2);
        });
        w.at(SimTime(120), move |w| {
            w.emit_event(
                n2,
                Event::Fault {
                    desc: "restart r2".into(),
                },
            );
            w.restart_node(n2);
        });
    }
    let index = Arc::new(Mutex::new(CausalIndex::new()));
    w.set_telemetry(index.clone());
    match split {
        Split::Single => {}
        Split::Auto(threads) => w.parallelize(*threads),
        Split::Explicit(assign) => w.set_partition(assign),
    }
    w.run_until(SimTime(250));
    let got = index.lock().unwrap().clone();
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The causal DAG is acyclic with parents strictly preceding
    /// children in canonical-key order, and the whole index — dump,
    /// fingerprint, and the backward slice from every natural anchor —
    /// is byte-identical across partitionings.
    #[test]
    fn causal_index_is_a_dag_and_partition_independent(
        seed in any::<u64>(),
        (d0, d1, d2) in (1u64..6, 1u64..6, 1u64..6),
        lossy in any::<bool>(),
        faults in any::<bool>(),
    ) {
        let delays = [d0, d1, d2];
        let loss = if lossy { 0.2 } else { 0.0 };
        let single = run(seed, &delays, loss, faults, &Split::Single);

        // Structure: every cause edge points at a recorded dispatch with
        // a strictly smaller canonical key. That is a topological order,
        // so the graph is acyclic and parents precede children.
        prop_assert!(!single.is_empty());
        prop_assert!(single.check().is_ok(), "{:?}", single.check());

        let auto = run(seed, &delays, loss, faults, &Split::Auto(4));
        let shredded = run(
            seed,
            &delays,
            loss,
            faults,
            // LAN {1,4,5} shares a region (delay-1 lookahead still
            // holds); everything else is its own region.
            &Split::Explicit(vec![0, 1, 2, 3, 1, 1]),
        );
        prop_assert!(auto.check().is_ok(), "{:?}", auto.check());
        prop_assert!(shredded.check().is_ok(), "{:?}", shredded.check());

        prop_assert_eq!(single.dump(), auto.dump());
        prop_assert_eq!(single.dump(), shredded.dump());
        prop_assert_eq!(single.fingerprint(), auto.fingerprint());
        prop_assert_eq!(single.fingerprint(), shredded.fingerprint());

        // Backward slices from the anchors `trace why` uses are
        // byte-identical, and genuinely multi-hop once traffic flowed.
        let anchor = single.last_flag_transition(None);
        prop_assert_eq!(anchor, auto.last_flag_transition(None));
        prop_assert_eq!(anchor, shredded.last_flag_transition(None));
        if let Some(a) = anchor {
            let slice = single.backward_slice(a);
            prop_assert!(!slice.is_empty());
            prop_assert!(single.backward_chain(a).len() > 1);
            prop_assert_eq!(&slice, &auto.backward_slice(a));
            prop_assert_eq!(&slice, &shredded.backward_slice(a));
        }
        for n in 0..6u32 {
            let e = single.last_event_on(n);
            prop_assert_eq!(e, auto.last_event_on(n));
            if let Some(a) = e {
                prop_assert_eq!(single.backward_slice(a), shredded.backward_slice(a));
            }
        }
    }
}

/// Fault injections are roots of the DAG, and their forward slice (the
/// blast radius) is partition-independent too.
#[test]
fn fault_forward_slice_is_partition_independent() {
    let delays = [2, 3, 2];
    let single = run(11, &delays, 0.0, true, &Split::Single);
    let auto = run(11, &delays, 0.0, true, &Split::Auto(4));
    let roots = single.fault_roots();
    assert!(!roots.is_empty(), "crash/restart should emit fault events");
    assert_eq!(roots, auto.fault_roots());
    for r in roots {
        let blast = single.forward_slice(r);
        assert_eq!(blast, auto.forward_slice(r));
    }
}

/// The on-start membership join is a root: its backward chain is just
/// itself, and a later delivery's chain passes through a timer dispatch.
#[test]
fn backward_chain_reaches_a_root() {
    let idx = run(3, &[1, 2, 1], 0.0, false, &Split::Single);
    let anchor = idx
        .last_flag_transition(None)
        .expect("flag transitions recorded");
    let chain = idx.backward_chain(anchor);
    assert!(chain.len() > 1, "expected a multi-hop chain");
    let root = idx.dispatch(chain[0]).expect("root is recorded");
    assert!(root.cause.is_none(), "chain must terminate at a root");
}
