//! Simulator-level guarantees: bit-for-bit determinism per seed, seed
//! sensitivity of loss injection, and event-ordering stability. These are
//! the properties every experiment in the repository leans on.

use netsim::{Ctx, Duration, IfaceId, Node, NodeIdx, SimTime, World};
use proptest::prelude::*;
use std::any::Any;

/// A chatty node: floods a counter to all interfaces on a timer, records
/// everything it hears.
struct Chatter {
    log: Vec<(u64, u32, Vec<u8>)>,
    counter: u8,
}

impl Chatter {
    fn new() -> Self {
        Chatter {
            log: Vec::new(),
            counter: 0,
        }
    }
}

impl Node for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Duration(3), 1);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
        self.log.push((ctx.now().ticks(), iface.0, packet.to_vec()));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.counter = self.counter.wrapping_add(1);
        for i in 0..ctx.iface_count() {
            ctx.send(IfaceId(i as u32), vec![self.counter]);
        }
        if ctx.now() < SimTime(200) {
            ctx.set_timer(Duration(7), 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Build a 5-node mesh-ish world with loss, optionally crash/restart two
/// of the nodes mid-run, and fingerprint every node's receive log.
fn run_with_faults(seed: u64, loss: f64, faults: bool) -> Vec<Vec<(u64, u32, Vec<u8>)>> {
    let mut w = World::new(seed);
    let nodes: Vec<NodeIdx> = (0..5)
        .map(|_| w.add_node(Box::new(Chatter::new())))
        .collect();
    let links = [
        (0usize, 1usize, 2u64),
        (1, 2, 3),
        (2, 3, 1),
        (3, 4, 2),
        (4, 0, 5),
        (1, 3, 4),
    ];
    for &(a, b, d) in &links {
        let (l, _, _) = w.add_p2p(nodes[a], nodes[b], Duration(d));
        if loss > 0.0 {
            w.set_link_loss(l, loss);
        }
    }
    let (lan, _) = w.add_lan(&[nodes[0], nodes[2], nodes[4]], Duration(1));
    if loss > 0.0 {
        w.set_link_loss(lan, loss);
    }
    if faults {
        // Crash two nodes mid-run (cancelling their armed timers) and
        // restart one; the other stays down. Both paths must be
        // deterministic.
        let (n1, n3) = (nodes[1], nodes[3]);
        w.at(SimTime(60), move |w| w.crash_node(n1));
        w.at(SimTime(90), move |w| w.crash_node(n3));
        w.at(SimTime(140), move |w| w.restart_node(n1));
    }
    w.run_until(SimTime(400));
    nodes
        .iter()
        .map(|&n| w.node::<Chatter>(n).log.clone())
        .collect()
}

fn run(seed: u64, loss: f64) -> Vec<Vec<(u64, u32, Vec<u8>)>> {
    run_with_faults(seed, loss, false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical seeds produce identical histories, even with loss.
    #[test]
    fn identical_seed_identical_history(seed in any::<u64>()) {
        prop_assert_eq!(run(seed, 0.3), run(seed, 0.3));
    }

    /// Without loss, histories are seed-independent (the RNG is only used
    /// for loss decisions in this scenario).
    #[test]
    fn lossless_history_is_seed_independent(s1 in any::<u64>(), s2 in any::<u64>()) {
        prop_assert_eq!(run(s1, 0.0), run(s2, 0.0));
    }

    /// Crash (with timer cancellation) and restart are part of the
    /// deterministic event order: same seed + same fault script ⇒
    /// identical histories, lossy links and all.
    #[test]
    fn crash_restart_history_is_deterministic(seed in any::<u64>()) {
        prop_assert_eq!(
            run_with_faults(seed, 0.3, true),
            run_with_faults(seed, 0.3, true)
        );
    }
}

#[test]
fn crashed_node_hears_nothing_while_down() {
    let logs = run_with_faults(5, 0.0, true);
    // Node 3 crashes at t=90 and never restarts: its log must stop there
    // (packets to a down node are discarded, its timers were cancelled).
    assert!(
        logs[3].iter().all(|&(at, _, _)| at <= 90),
        "a crashed node must not receive after its crash"
    );
    // Node 1 restarts at t=140 and must resume receiving.
    assert!(
        logs[1].iter().any(|&(at, _, _)| at > 140),
        "a restarted node must hear traffic again"
    );
    // The fault script must actually change history vs. the healthy run.
    assert_ne!(logs, run_with_faults(5, 0.0, false));
}

#[test]
fn different_seed_different_losses() {
    // With heavy loss, at least one of a few seed pairs must diverge
    // (overwhelmingly likely; fixed seeds keep this deterministic).
    let a = run(1, 0.5);
    let b = run(2, 0.5);
    assert_ne!(a, b, "seeds 1 and 2 produced identical loss patterns");
}

#[test]
fn capture_records_transmissions() {
    let mut w = World::new(4);
    let a = w.add_node(Box::new(Chatter::new()));
    let b = w.add_node(Box::new(Chatter::new()));
    w.add_p2p(a, b, Duration(2));
    w.enable_capture(5);
    w.run_until(SimTime(100));
    let cap = w.captured();
    assert_eq!(cap.len(), 5, "capture must stop at the limit");
    assert!(cap[0].at <= cap[1].at, "records in time order");
    // The chatter payloads aren't valid packets: decoded as corrupt,
    // never panicking.
    assert!(cap[0].summary.starts_with("corrupt"));
}

#[test]
fn counters_are_reproducible() {
    let totals: Vec<u64> = (0..3)
        .map(|_| {
            let mut w = World::new(9);
            let a = w.add_node(Box::new(Chatter::new()));
            let b = w.add_node(Box::new(Chatter::new()));
            w.add_p2p(a, b, Duration(2));
            w.run_until(SimTime(300));
            w.counters().total_bytes()
        })
        .collect();
    assert_eq!(totals[0], totals[1]);
    assert_eq!(totals[1], totals[2]);
    assert!(totals[0] > 0);
}
