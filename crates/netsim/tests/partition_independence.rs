//! The parallel core's determinism contract, property-tested: for any
//! seed, loss rate, adversarial channel model, and fault script, a run on
//! one global region, a run on the auto-partitioned world, and a run on
//! an adversarial one-node-per-region split produce byte-identical
//! receive logs, telemetry streams, counters, and packet captures.
//!
//! This is the load-bearing guarantee of the region-partitioned event
//! core (DESIGN.md §9): partitioning and thread count are pure
//! performance knobs, invisible to every observable the experiments
//! record.

use netsim::{ChannelModel, Ctx, Duration, IfaceId, Node, NodeIdx, SimTime, World};
use proptest::prelude::*;
use std::any::Any;
use std::sync::{Arc, Mutex};
use telemetry::{Event, Sink, Ticks};

/// Floods a counter to all interfaces on a timer and logs all receptions.
struct Chatter {
    log: Vec<(u64, u32, Vec<u8>)>,
    counter: u8,
}

impl Chatter {
    fn new() -> Self {
        Chatter {
            log: Vec::new(),
            counter: 0,
        }
    }
}

impl Node for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(Duration(3), 1);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
        self.log.push((ctx.now().ticks(), iface.0, packet.to_vec()));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.counter = self.counter.wrapping_add(1);
        for i in 0..ctx.iface_count() {
            ctx.send(IfaceId(i as u32), vec![self.counter, 0xA5]);
        }
        if ctx.now() < SimTime(260) {
            ctx.set_timer(Duration(5), 1);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Collects the canonical JSONL telemetry stream.
#[derive(Default)]
struct Collect(Vec<String>);

impl Sink for Collect {
    fn event(&mut self, node: u32, at: Ticks, ev: &Event) {
        self.0.push(ev.to_json(node, at));
    }
}

/// How to split the world before running.
#[derive(Clone, Debug)]
enum Split {
    /// One global region — the sequential reference.
    Single,
    /// `World::parallelize(threads)`: delay-aware auto-partition.
    Auto(usize),
    /// An explicit assignment (adversarial splits included).
    Explicit(Vec<u32>),
}

/// Everything observable about a run, for byte-equality comparison.
/// The region count is deliberately *not* part of the equality: it is
/// the one thing that legitimately differs between splits.
#[derive(PartialEq, Debug)]
struct Observed {
    logs: Vec<Vec<(u64, u32, Vec<u8>)>>,
    telemetry: Vec<String>,
    captures: Vec<String>,
    counter_totals: (u64, u64, u64, u64, u64),
}

/// A 6-node world: a line 0-1-2-3 with proptest-chosen delays, a LAN
/// {1, 4, 5}, loss and an adversarial channel model on the middle link,
/// and an optional crash/restart of node 2 mid-run.
fn run(
    seed: u64,
    delays: &[u64; 3],
    loss: f64,
    chan: ChannelModel,
    faults: bool,
    split: &Split,
) -> (Observed, usize) {
    let mut w = World::new(seed);
    let nodes: Vec<NodeIdx> = (0..6)
        .map(|_| w.add_node(Box::new(Chatter::new())))
        .collect();
    let mut links = Vec::new();
    for (i, &d) in delays.iter().enumerate() {
        let (l, _, _) = w.add_p2p(nodes[i], nodes[i + 1], Duration(d));
        links.push(l);
    }
    let (lan, _) = w.add_lan(&[nodes[1], nodes[4], nodes[5]], Duration(1));
    if loss > 0.0 {
        w.set_link_loss(links[1], loss);
        w.set_link_loss(lan, loss / 2.0);
    }
    w.set_channel_model(links[1], chan);
    if faults {
        let n2 = nodes[2];
        w.at(SimTime(70), move |w| w.crash_node(n2));
        w.at(SimTime(150), move |w| w.restart_node(n2));
    }
    let telem = Arc::new(Mutex::new(Collect::default()));
    w.set_telemetry(telem.clone());
    w.enable_capture(200);
    match split {
        Split::Single => {}
        Split::Auto(threads) => w.parallelize(*threads),
        Split::Explicit(assign) => w.set_partition(assign),
    }
    w.run_until(SimTime(400));
    let c = w.counters();
    let telemetry = std::mem::take(&mut telem.lock().unwrap().0);
    let observed = Observed {
        logs: nodes
            .iter()
            .map(|&n| w.node::<Chatter>(n).log.clone())
            .collect(),
        telemetry,
        captures: w
            .captured()
            .iter()
            .map(|r| format!("{} {} {} {}", r.at.ticks(), r.link.0, r.from.0, r.summary))
            .collect(),
        counter_totals: (
            c.total_bytes(),
            c.events_dispatched(),
            c.rx_pkts(),
            c.timers_fired(),
            c.total_control_pkts(),
        ),
    };
    (observed, w.region_count())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single region vs auto-partition vs one-node-per-region: identical
    /// observables under loss, channel impairments, and crash/restart.
    #[test]
    fn any_partition_matches_single_region(
        seed in any::<u64>(),
        (d0, d1, d2) in (1u64..6, 1u64..6, 1u64..6),
        lossy in any::<bool>(),
        (dup, reorder, corrupt) in (0u32..300, 0u32..300, 0u32..300),
        faults in any::<bool>(),
    ) {
        let delays = [d0, d1, d2];
        let loss = if lossy { 0.25 } else { 0.0 };
        let chan = ChannelModel {
            corrupt_pm: corrupt,
            duplicate_pm: dup,
            reorder_pm: reorder,
            jitter: 5,
        };
        let (single, single_regions) = run(seed, &delays, loss, chan, faults, &Split::Single);
        prop_assert_eq!(single_regions, 1);
        let (auto, _) = run(seed, &delays, loss, chan, faults, &Split::Auto(4));
        let (shredded, shredded_regions) = run(
            seed,
            &delays,
            loss,
            chan,
            faults,
            // Nodes 1, 4, 5 share a delay-1 LAN and must stay together
            // (lookahead >= 1 still holds since the LAN delay is 1);
            // everything else gets its own region.
            &Split::Explicit(vec![0, 1, 2, 3, 1, 1]),
        );
        prop_assert_eq!(shredded_regions, 4);
        prop_assert_eq!(&single, &auto);
        prop_assert_eq!(&single, &shredded);
    }
}

/// The auto-partitioner actually engages on this fixture when the middle
/// link is slow — the property above must not be vacuously comparing
/// three single-region runs.
#[test]
fn auto_partition_engages_on_slow_cut() {
    let (_, regions) = run(
        7,
        &[1, 5, 1],
        0.0,
        ChannelModel::CLEAN,
        false,
        &Split::Auto(4),
    );
    assert!(regions > 1, "expected a cut, got {regions} region");
}
