//! Repro check: is captured() truncation really partition-independent
//! when the number of transmissions exceeds the capture limit?

use netsim::{Ctx, Duration, IfaceId, Node, NodeIdx, SimTime, World};
use std::any::Any;

/// Replies with one packet to every packet it receives.
struct Echo;

impl Node for Echo {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, _packet: &[u8]) {
        ctx.send(iface, vec![0xEE]);
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn run(partition: Option<&[u32]>) -> Vec<String> {
    let mut w = World::new(1);
    // nodes: 0=A, 1=B, 2=C, 3=D
    let n: Vec<NodeIdx> = (0..4).map(|_| w.add_node(Box::new(Echo))).collect();
    // A-D and C-B, both delay 2: deliveries to D and B land at the same tick.
    w.add_p2p(n[0], n[3], Duration(2));
    w.add_p2p(n[2], n[1], Duration(2));
    if let Some(p) = partition {
        w.set_partition(p);
    }
    w.enable_capture(3);
    let (a, c) = (n[0], n[2]);
    w.at(SimTime(0), move |w| {
        w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![1]));
        w.call_node(c, |_n, ctx| ctx.send(IfaceId(0), vec![2]));
    });
    w.run_until(SimTime(2));
    w.captured()
        .iter()
        .map(|r| format!("{} {:?} {:?}", r.at.ticks(), r.link, r.from))
        .collect()
}

#[test]
fn capture_truncation_partition_independence() {
    let single = run(None);
    // D (node 3) alone in one region, everyone else in the other.
    let split = run(Some(&[0, 0, 0, 1]));
    assert_eq!(single, split, "captured() diverged across partitions");
}
