//! The discrete-event simulation world: nodes, links, region-partitioned
//! event heaps, and the conservative parallel driver loop.
//!
//! The simulator is deliberately simple (smoltcp-style "simplicity and
//! robustness"): links have a fixed propagation delay and optional random
//! loss, nodes are trait objects that react to packets and timers, and all
//! randomness flows from seeded per-node RNG streams so every run is
//! reproducible. Links can additionally carry a deterministic capacity
//! model ([`LinkCapacity`]): per-direction bandwidth in bytes/tick with a
//! bounded FIFO transmit queue, serialization + queueing delay, tail-drop
//! on overflow, and ECN-style marking — all computed from queue state
//! alone, never from randomness, so a capacity-disabled world (the
//! default) reproduces pre-capacity traces byte-identically.
//!
//! # Units
//!
//! Two impairment knobs use different units for historical reasons, kept
//! deliberately distinct: [`Link::loss`] is a *fraction* (`f64` in
//! `[0, 1]`, clamped at set time) because it predates the text-round-trip
//! requirement, while every [`ChannelModel`] probability is integer
//! *per-mille* (`0..=1000`) so fault schedules carrying them round-trip
//! exactly through text. [`LinkCapacity`] fields are plain integers
//! (bytes/tick and bytes) for the same round-trip reason.
//!
//! # Parallel core (DESIGN.md §9)
//!
//! Nodes are assigned to **regions** (one by default; see
//! [`World::set_partition`] and [`World::parallelize`]). Each region owns
//! its own event heap, event arena, RNG streams, `Counters` shard, and
//! telemetry buffer, so regions can advance concurrently with no locks on
//! the hot path. Regions advance in lock-step **windows** bounded by the
//! conservative lookahead `L = min cross-region link delay`: no event a
//! region processes before `T_min + L` can be affected by another region's
//! work in the same window, because any cross-region packet created in the
//! window is due at or after that bound. Cross-region deliveries travel
//! through per-region outboxes drained at the window barrier.
//!
//! # Determinism contract
//!
//! Every event carries a partition-independent **canonical key**
//! `(time, epoch, origin node, origin dispatch seq, emission index)`; each
//! region's heap orders by that key, per-node RNG streams are a pure
//! function of the world seed and the node index, and telemetry is
//! buffered per region and merged in canonical-key order at each barrier.
//! The result: receptions, merged counters, captures, and the telemetry
//! byte stream are **identical for any partition and any `--threads`**,
//! including the default single region.

use crate::counters::{Counters, PacketClass};
use crate::time::{Duration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// RNG stream id for per-node streams (see [`par::mix`]): node `i`'s
/// stream is `mix(world_seed, NODE_RNG_STREAM, i)`, disjoint from the
/// trial-level streams the bench drivers derive from the same seed.
const NODE_RNG_STREAM: u64 = 0x6E6F_6465; // "node"

/// Canonical-key epoch for start-of-world dispatches (`on_start`): they
/// sort before any runtime event at the same tick.
const EPOCH_START: u8 = 0;
/// Canonical-key epoch for scripts. Scripts live in a separate
/// world-level queue and never enter a region heap; the epoch exists so
/// a script dispatch has a canonical identity of its own — the causal
/// root every fault injection's consequences hang off — that sorts
/// before the node events it triggers at the same tick.
const EPOCH_SCRIPT: u8 = 1;
/// Canonical-key epoch for runtime node events (deliveries, timers,
/// barrier dispatches).
const EPOCH_EVENT: u8 = 2;

/// Index of a node in the world.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(pub usize);

impl fmt::Debug for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A node-local interface index: position in the node's own interface list.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfaceId(pub u32);

impl IfaceId {
    /// As a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

impl fmt::Display for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

/// Index of a link in the world.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Whether a link is a point-to-point wire or a multi-access LAN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// Exactly two attachments; a send by one is delivered to the other.
    PointToPoint,
    /// Any number of attachments; a send by one is delivered to all others
    /// (needed for the paper's §3.7 multi-access subnetwork behaviors:
    /// prune override, join suppression, DR election).
    Lan,
}

/// Per-link adversarial impairments, applied independently per receiver
/// copy at transmit time from the sender's seeded RNG stream — a real
/// wide-area fabric does not just drop packets, it also corrupts,
/// duplicates, and reorders them (the regime where the paper's §2
/// soft-state robustness claim must hold).
///
/// Probabilities are integer per-mille (`0..=1000`), never floats, so
/// scenario schedules carrying them round-trip exactly through text.
/// The default (all zeros) is a clean channel that consumes no
/// randomness, leaving pre-existing traces byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelModel {
    /// Per-mille probability that a delivered copy has one byte flipped.
    pub corrupt_pm: u32,
    /// Per-mille probability that a receiver gets the packet twice.
    pub duplicate_pm: u32,
    /// Per-mille probability that a copy is delayed past later traffic.
    pub reorder_pm: u32,
    /// Maximum extra delay (in ticks) added to a reordered copy; the
    /// actual extra delay is drawn uniformly from `1..=jitter.max(1)`.
    pub jitter: u64,
}

impl ChannelModel {
    /// A clean channel: no corruption, duplication, or reordering.
    pub const CLEAN: ChannelModel = ChannelModel {
        corrupt_pm: 0,
        duplicate_pm: 0,
        reorder_pm: 0,
        jitter: 0,
    };

    /// True when every impairment probability is zero (the transmit path
    /// then consumes no randomness for this model).
    pub fn is_clean(&self) -> bool {
        self.corrupt_pm == 0 && self.duplicate_pm == 0 && self.reorder_pm == 0
    }
}

/// Deterministic per-direction link capacity: bandwidth in bytes/tick
/// with a bounded FIFO transmit queue (the ce-netsim design from the
/// ROADMAP). Every quantity is an integer and every decision is a pure
/// function of queue state — the capacity path consumes **no randomness**,
/// so enabling it on some links leaves the RNG streams (and therefore
/// every loss/impairment roll) of a run untouched.
///
/// Each *direction* of a link — each `(link, sending node)` pair — has its
/// own queue: a sender transmitting `len` bytes first drains its backlog
/// by `elapsed × bytes_per_tick`, then tail-drops the packet if
/// `backlog + len` would exceed `queue_bytes`, otherwise enqueues it and
/// delivers after `ceil(backlog / bytes_per_tick)` serialization +
/// queueing delay on top of the link's propagation delay. Crossing
/// `ecn_bytes` (when nonzero) counts an ECN-style congestion mark.
///
/// With `ctrl_priority` (the default), control-class packets — soft-state
/// refreshes, Joins/Prunes, IGMP queries (see
/// [`crate::counters::PacketClass`]) — bypass the data queue entirely:
/// the paper's §3 graceful-degradation argument requires that the
/// control plane keeps converging while the data plane saturates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkCapacity {
    /// Bandwidth in bytes per tick; `0` disables the capacity model for
    /// the link (unlimited, the default — no queueing, no drops).
    pub bytes_per_tick: u64,
    /// Transmit queue bound in bytes; a packet that would push the
    /// backlog past this is tail-dropped at the sender.
    pub queue_bytes: u64,
    /// ECN-style marking threshold in bytes (`0` = no marking): an
    /// enqueue that pushes the backlog past this counts a congestion
    /// mark (observable in counters/telemetry, not in packet bytes).
    pub ecn_bytes: u64,
    /// Control-class packets bypass the queue (never dropped or delayed
    /// by data backlog). Disable to model a fabric without priority —
    /// the configuration the no-starvation oracle exists to catch.
    pub ctrl_priority: bool,
}

impl LinkCapacity {
    /// No capacity model: unlimited bandwidth, no queueing (the default).
    pub const UNLIMITED: LinkCapacity = LinkCapacity {
        bytes_per_tick: 0,
        queue_bytes: 0,
        ecn_bytes: 0,
        ctrl_priority: true,
    };

    /// True when the capacity model is disabled for this link — the
    /// transmit path then takes the pre-capacity fast path untouched.
    pub fn is_unlimited(&self) -> bool {
        self.bytes_per_tick == 0
    }
}

impl Default for LinkCapacity {
    fn default() -> Self {
        LinkCapacity::UNLIMITED
    }
}

/// A link connecting node interfaces.
#[derive(Debug)]
pub struct Link {
    /// Point-to-point or LAN.
    pub kind: LinkKind,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Administratively/physically up?
    pub up: bool,
    /// Per-receiver independent drop probability (failure injection).
    /// A **fraction** in `[0, 1]` — unlike [`ChannelModel`], whose
    /// probabilities are integer per-mille (see the module doc's Units
    /// section). Clamped into range by [`World::set_link_loss`].
    pub loss: f64,
    /// Adversarial impairments (corrupt/duplicate/reorder).
    pub channel: ChannelModel,
    /// Deterministic bandwidth/queue model (default: unlimited).
    pub capacity: LinkCapacity,
    /// The attached `(node, iface)` pairs.
    pub attachments: Vec<(NodeIdx, IfaceId)>,
}

/// A simulated node. Implementations wrap sans-IO protocol engines and
/// translate their outputs into [`Ctx`] calls.
///
/// `Send` is required because the partitioned world hands whole regions
/// (which own their nodes) across scoped threads at window boundaries;
/// a node is only ever touched by the one thread running its region.
pub trait Node: Send {
    /// Called once when the simulation starts, before any packets flow.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A packet arrived on `iface`. `packet` is the full serialized buffer
    /// (network header included).
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]);

    /// A timer set via [`Ctx::set_timer`]/[`Ctx::set_timer_at`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);

    /// The node crashed with total state loss ([`World::crash_node`]).
    /// Implementations drop all volatile protocol state; static
    /// configuration (addresses, interface roles) survives, modelling a
    /// router whose config is in NVRAM but whose RAM is gone. No [`Ctx`] is
    /// provided — a dead node cannot send or arm timers.
    fn on_crash(&mut self) {}

    /// The node powered back up after a crash ([`World::restart_node`]).
    /// Default: cold-boot via [`Node::on_start`].
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.on_start(ctx);
    }

    /// The world attached a telemetry sink ([`World::set_telemetry`]):
    /// adopt the per-node handle for protocol-level emissions. Default:
    /// ignore (nodes that emit nothing need no handle).
    fn set_telemetry(&mut self, _telem: telemetry::Telem) {}

    /// Downcast support for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support for scenario scripting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The partition-independent canonical key of a region event.
///
/// `origin` is the creating node's index + 1 (0 is reserved for the
/// world itself, which never creates region events); `seq` is the
/// creating dispatch's per-node sequence number; `emit` is the 1-based
/// emission index within that dispatch (0 is reserved for the dispatch's
/// own identity tag, used to key telemetry and captures). Because every
/// component is derived from the creating node's own deterministic
/// history — never from a global insertion counter — the total order of
/// events is the same for every region assignment and thread count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
struct Tag {
    time: SimTime,
    epoch: u8,
    origin: u32,
    seq: u64,
    emit: u32,
}

impl Tag {
    /// The dispatch-identity part of the tag as a public
    /// [`telemetry::EventId`]. The `emit` component is dropped: causal
    /// provenance identifies *dispatches* (always `emit == 0`), and the
    /// tags stored as causes are exactly the identity tags.
    fn event_id(self) -> telemetry::EventId {
        telemetry::EventId {
            time: self.time.ticks(),
            epoch: self.epoch,
            origin: self.origin,
            seq: self.seq,
        }
    }
}

enum Event {
    Deliver {
        node: NodeIdx,
        iface: IfaceId,
        /// Shared, immutable payload: a LAN transmit enqueues one
        /// delivery per attached receiver, and the `Arc` makes each a
        /// refcount bump on the single serialized buffer instead of a
        /// per-receiver copy. Receivers only ever see `&[u8]`
        /// ([`Node::on_packet`]), so immutability is free.
        packet: Arc<[u8]>,
        link: LinkId,
    },
    Timer {
        node: NodeIdx,
        token: u64,
    },
}

/// Handle to a scheduled timer, usable with [`Ctx::cancel_timer`].
///
/// Generation-counted: event slots are recycled once an event fires or is
/// cancelled, and the generation disambiguates a handle from any later
/// tenant of the same slot, so cancelling an already-fired timer is a safe
/// no-op rather than an ABA hazard. The slot index is region-local; a
/// handle is only meaningful to the node that armed the timer (timers
/// never cross regions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId {
    slot: usize,
    gen: u32,
}

/// One event-arena slot. The heap stores `(tag, slot, gen)`; a popped
/// entry whose generation no longer matches (or whose slot is empty) is a
/// cancelled timer and is skipped without dispatch.
struct EventSlot {
    gen: u32,
    ev: Option<Event>,
    /// Identity tag of the dispatch that created this event — the
    /// event's causal parent, threaded into the handling dispatch so
    /// every consequence links back to its cause.
    cause: Tag,
}

/// One captured transmission (see [`World::enable_capture`]).
#[derive(Clone, Debug)]
pub struct CaptureRecord {
    /// Transmission time.
    pub at: SimTime,
    /// The link transmitted on.
    pub link: LinkId,
    /// The transmitting node.
    pub from: NodeIdx,
    /// Human-readable decode of the packet (see [`crate::trace`]).
    pub summary: String,
}

/// A buffered telemetry entry: the emission plus the canonical key of the
/// dispatch that produced it, so the barrier merge can restore the
/// partition-independent order.
struct BufEntry {
    tag: Tag,
    idx: u64,
    node: u32,
    at: u64,
    ev: telemetry::Event,
    /// Cause of the emitting dispatch (None for causal roots).
    cause: Option<Tag>,
}

/// Per-region telemetry buffer. Node adapters and the world's own
/// emitters write here during a window (each buffer is only touched by
/// the thread running its region — the mutex is uncontended); the main
/// thread drains all buffers at every barrier, sorts by `(tag, idx)`,
/// and streams into the user's sink. `idx` is monotone per buffer:
/// same-tag entries always come from a single dispatch in a single
/// region, so only their relative order matters.
#[derive(Default)]
struct RegionBuf {
    tag: Tag,
    cause: Option<Tag>,
    next: u64,
    entries: Vec<BufEntry>,
    /// One provenance edge per dispatch this window — including silent
    /// dispatches that emit no events, so backward slices never have
    /// holes where a hop merely forwarded data.
    links: Vec<(Tag, Option<Tag>)>,
}

impl telemetry::Sink for RegionBuf {
    fn event(&mut self, node: u32, at: u64, ev: &telemetry::Event) {
        let idx = self.next;
        self.next += 1;
        self.entries.push(BufEntry {
            tag: self.tag,
            idx,
            node,
            at,
            ev: ev.clone(),
            cause: self.cause,
        });
    }
}

/// A cross-region delivery waiting at the window barrier to be routed
/// into its destination region's heap. The heap orders by canonical tag,
/// so routing order is irrelevant to the result.
struct Outgoing {
    dst: u32,
    tag: Tag,
    /// Identity tag of the creating dispatch (causal parent).
    cause: Tag,
    node: NodeIdx,
    iface: IfaceId,
    packet: Arc<[u8]>,
    link: LinkId,
}

/// State shared read-only across regions during a window: topology and
/// node liveness. Mutated only at barriers (scripts, fault injection) on
/// the main thread.
struct Shared {
    links: Vec<Link>,
    /// ifaces[node.0][iface.0] = link the interface attaches to.
    ifaces: Vec<Vec<LinkId>>,
    /// node_up[node.0]: false while the node is crashed. Down nodes get no
    /// deliveries and no timer callbacks.
    node_up: Vec<bool>,
    /// region_of[node.0] = owning region id.
    region_of: Vec<u32>,
    /// slot_of[node.0] = the node's slot inside its region.
    slot_of: Vec<u32>,
    /// Packet capture limit, `Some(limit)` when enabled.
    capture_limit: Option<usize>,
}

/// Per-direction transmit-queue state for the capacity model: one entry
/// per `(link, sending node)` pair that has ever transmitted on a
/// capacity-limited link. Lives in the sender's region — every transmit
/// by a node runs inside its own region's dispatches, so the state is
/// touched by exactly one region and the partition cannot observe it
/// (the PR 6 byte-identity invariant).
#[derive(Clone, Copy, Default)]
struct TxDir {
    /// Last time the backlog was drained (sender-region clock).
    last: SimTime,
    /// Queued bytes not yet serialized onto the wire.
    backlog: u64,
    /// Highest power-of-2 backlog bucket seen, for rate-limited
    /// queue-depth telemetry: one event per new peak bucket, not one
    /// per packet, keeps the stream bounded and deterministic.
    peak_bucket: u32,
}

/// One region of the partitioned world: its nodes, their RNG streams and
/// dispatch counters, an event heap + arena, a `Counters` shard, capture
/// shard, telemetry buffer, and the cross-region outbox.
struct Region {
    id: u32,
    now: SimTime,
    nodes: Vec<Option<Box<dyn Node>>>,
    rngs: Vec<StdRng>,
    /// Per-slot dispatch counter: the `seq` component of canonical tags.
    dispatch_seq: Vec<u64>,
    heap: BinaryHeap<Reverse<(Tag, usize, u32)>>,
    /// Event arena, indexed by the slot carried in the heap. Slots are
    /// vacated (and recycled via `free`) as events fire or are cancelled,
    /// so memory is bounded by *outstanding* events, not events ever
    /// scheduled.
    events: Vec<EventSlot>,
    /// Vacated arena slots available for reuse.
    free: Vec<usize>,
    counters: Counters,
    /// Capture shard: `(dispatch tag, per-region seq, record)`.
    capture: Vec<(Tag, u64, CaptureRecord)>,
    cap_seq: u64,
    buf: Option<Arc<Mutex<RegionBuf>>>,
    outbox: Vec<Outgoing>,
    /// Capacity-model queue state, keyed `(link, sending node)`. Only
    /// populated for links with a [`LinkCapacity`] configured; an
    /// unlimited link never touches it.
    tx_queues: std::collections::HashMap<(usize, usize), TxDir>,
    /// Wall-clock/event-count attribution shard, `Some` when profiling
    /// (see [`World::enable_profile`]). Only the profiler reads
    /// wall-clock; nothing inside the simulation ever does.
    prof: Option<crate::profile::RegionProfile>,
}

impl Region {
    fn new(id: u32) -> Region {
        Region {
            id,
            now: SimTime::ZERO,
            nodes: Vec::new(),
            rngs: Vec::new(),
            dispatch_seq: Vec::new(),
            heap: BinaryHeap::new(),
            events: Vec::new(),
            free: Vec::new(),
            counters: Counters::default(),
            capture: Vec::new(),
            cap_seq: 0,
            buf: None,
            outbox: Vec::new(),
            tx_queues: std::collections::HashMap::new(),
            prof: None,
        }
    }

    fn push_event(&mut self, tag: Tag, cause: Tag, ev: Event) -> TimerId {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.events[slot].ev = Some(ev);
                self.events[slot].cause = cause;
                slot
            }
            None => {
                self.events.push(EventSlot {
                    gen: 0,
                    ev: Some(ev),
                    cause,
                });
                self.events.len() - 1
            }
        };
        let gen = self.events[slot].gen;
        self.heap.push(Reverse((tag, slot, gen)));
        TimerId { slot, gen }
    }

    /// Vacate a slot after its event fired or was cancelled: bump the
    /// generation (so outstanding handles and heap entries for this tenant
    /// go stale) and recycle the index. The generation must strictly
    /// increase across a recycle — if it ever wrapped, a 2^32-events-old
    /// stale handle (or a future cross-region cancel) could ABA the
    /// slot's new tenant.
    fn vacate(&mut self, slot: usize) -> Event {
        let s = &mut self.events[slot];
        let ev = s.ev.take().expect("vacating an empty event slot");
        let old = s.gen;
        s.gen = old.wrapping_add(1);
        debug_assert!(
            s.gen > old,
            "event-slot generation wrapped: recycled slot would ABA stale handles"
        );
        self.free.push(slot);
        ev
    }

    /// Run one node callback under a fresh canonical dispatch tag,
    /// through the take-call-put dance that lets the node borrow the
    /// region mutably alongside itself. `cause` is the identity tag of
    /// the dispatch that created the event being handled (`None` for
    /// causal roots: `on_start`, and barrier dispatches outside any
    /// script); it stamps every emission and is recorded as one
    /// provenance edge even when the callback emits nothing.
    fn dispatch(
        &mut self,
        shared: &Shared,
        node: NodeIdx,
        epoch: u8,
        cause: Option<Tag>,
        f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>),
    ) {
        let slot = shared.slot_of[node.0] as usize;
        let seq = self.dispatch_seq[slot];
        self.dispatch_seq[slot] = seq + 1;
        let tag = Tag {
            time: self.now,
            epoch,
            origin: node.0 as u32 + 1,
            seq,
            emit: 0,
        };
        if let Some(buf) = &self.buf {
            let mut guard = buf.lock().expect("region buffer poisoned");
            guard.tag = tag;
            guard.cause = cause;
            guard.links.push((tag, cause));
        }
        let mut node_box = self.nodes[slot].take().expect("node re-entrancy");
        {
            let mut ctx = Ctx {
                region: self,
                shared,
                node,
                slot,
                tag,
                emits: 0,
            };
            f(node_box.as_mut(), &mut ctx);
        }
        self.nodes[slot] = Some(node_box);
    }

    /// Process every event in this region due strictly before `bound`
    /// (up to `budget` heap pops), advancing the region clock event by
    /// event. Newly created same-region events inside the window are
    /// picked up in the same pass; cross-region events land in the
    /// outbox (the lookahead guarantees they are due at or after
    /// `bound`, so routing them at the barrier is conservative-safe).
    fn run_window(&mut self, shared: &Shared, bound: SimTime, budget: usize) -> usize {
        let mut n = 0;
        while n < budget {
            let due = match self.heap.peek() {
                Some(Reverse((tag, _, _))) => tag.time,
                None => break,
            };
            if due >= bound {
                break;
            }
            let Some(Reverse((tag, slot, gen))) = self.heap.pop() else {
                break;
            };
            debug_assert!(tag.time >= self.now, "region time went backwards");
            self.now = tag.time;
            n += 1;
            // A generation mismatch or empty slot means the event was
            // cancelled (or the slot recycled after cancellation): skip
            // without dispatch.
            if self.events[slot].gen != gen || self.events[slot].ev.is_none() {
                self.counters.record_timer_skipped();
                if let Some(p) = &mut self.prof {
                    p.stale_events += 1;
                }
                continue;
            }
            let cause = self.events[slot].cause;
            let ev = self.vacate(slot);
            self.counters.record_dispatch();
            let t0 = self.prof.as_ref().map(|_| std::time::Instant::now());
            match ev {
                Event::Deliver {
                    node,
                    iface,
                    packet,
                    link,
                } => {
                    // In-flight packets to a node that crashed after
                    // transmit are discarded at its dead NIC.
                    if !shared.node_up[node.0] {
                        self.counters.record_pkt_dropped_node_down();
                        continue;
                    }
                    let class = PacketClass::classify(&packet);
                    self.counters.record_rx(link, class, packet.len());
                    self.dispatch(shared, node, EPOCH_EVENT, Some(cause), |nb, ctx| {
                        nb.on_packet(ctx, iface, &packet)
                    });
                    if let (Some(p), Some(t0)) = (&mut self.prof, t0) {
                        p.deliver_events += 1;
                        p.deliver_nanos += t0.elapsed().as_nanos() as u64;
                    }
                }
                Event::Timer { node, token } => {
                    // Belt-and-braces: crash_node cancels the node's
                    // timers eagerly, but a script could still arm one
                    // against a down node via call_node.
                    if !shared.node_up[node.0] {
                        self.counters.record_timer_cancelled_node_down();
                        continue;
                    }
                    self.counters.record_timer_fired();
                    self.dispatch(shared, node, EPOCH_EVENT, Some(cause), |nb, ctx| {
                        ctx.emit(node, || telemetry::Event::TimerFired { token });
                        nb.on_timer(ctx, token);
                    });
                    if let (Some(p), Some(t0)) = (&mut self.prof, t0) {
                        p.timer_events += 1;
                        p.timer_nanos += t0.elapsed().as_nanos() as u64;
                    }
                }
            }
        }
        n
    }
}

/// The per-callback view of the world handed to [`Node`] implementations.
pub struct Ctx<'a> {
    region: &'a mut Region,
    shared: &'a Shared,
    node: NodeIdx,
    slot: usize,
    /// The dispatch's canonical identity tag (`emit == 0`).
    tag: Tag,
    /// Emission counter: 1-based `emit` component for created events.
    emits: u32,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.region.now
    }

    /// The index of the node being called.
    pub fn me(&self) -> NodeIdx {
        self.node
    }

    /// Number of interfaces this node has.
    pub fn iface_count(&self) -> usize {
        self.shared.ifaces[self.node.0].len()
    }

    /// Emit a structured telemetry event on behalf of `node` into the
    /// region buffer. The closure runs only when a sink is attached, so
    /// the disabled path never constructs (or allocates for) the event.
    #[inline]
    fn emit(&mut self, node: NodeIdx, f: impl FnOnce() -> telemetry::Event) {
        if let Some(buf) = &self.region.buf {
            let ev = f();
            use telemetry::Sink as _;
            buf.lock().expect("region buffer poisoned").event(
                node.0 as u32,
                self.region.now.ticks(),
                &ev,
            );
        }
    }

    /// The canonical tag for the next event this dispatch creates.
    fn next_tag(&mut self, time: SimTime) -> Tag {
        self.emits += 1;
        Tag {
            time,
            epoch: EPOCH_EVENT,
            origin: self.tag.origin,
            seq: self.tag.seq,
            emit: self.emits,
        }
    }

    /// Schedule a delivery, locally or via the cross-region outbox.
    fn schedule_deliver(
        &mut self,
        due: SimTime,
        node: NodeIdx,
        iface: IfaceId,
        packet: Arc<[u8]>,
        link: LinkId,
    ) {
        let tag = self.next_tag(due);
        let dst = self.shared.region_of[node.0];
        if dst == self.region.id {
            let _ = self.region.push_event(
                tag,
                self.tag,
                Event::Deliver {
                    node,
                    iface,
                    packet,
                    link,
                },
            );
        } else {
            self.region.outbox.push(Outgoing {
                dst,
                tag,
                cause: self.tag,
                node,
                iface,
                packet,
                link,
            });
        }
    }

    /// Transmit `packet` out of `(node, iface)`: schedule deliveries to
    /// all other attachments of the link after its propagation delay,
    /// applying the link's loss probability independently per receiver.
    /// All rolls come from the *sender's* RNG stream, during the
    /// sender's own dispatch — which is what keeps impairments a pure
    /// function of the seed regardless of how receivers are partitioned.
    fn transmit(&mut self, iface: IfaceId, packet: Vec<u8>) {
        let from = self.node;
        let link_id = self.shared.ifaces[from.0][iface.index()];
        let link = &self.shared.links[link_id.0];
        if !link.up {
            return;
        }
        let (class, proto) = PacketClass::classify_full(&packet);
        // Deterministic capacity model (see [`LinkCapacity`]): drain the
        // sender's per-direction backlog by elapsed time, tail-drop on
        // overflow, otherwise enqueue and pay serialization + queueing
        // delay. Everything here is pure integer arithmetic on queue
        // state — no RNG draw ever happens on this path, so a world with
        // capacity disabled (or only *other* links capped) keeps its
        // random streams, and therefore its traces, byte-identical.
        // Control-class packets bypass the queue when the link grants
        // them priority: the structural guarantee behind the
        // no-starvation oracle.
        let cap = link.capacity;
        let mut qdelay = Duration(0);
        let priority_bypass = cap.ctrl_priority && class == PacketClass::Control;
        if !cap.is_unlimited() && !priority_bypass {
            let len = packet.len() as u64;
            let rate = cap.bytes_per_tick;
            let now = self.region.now;
            let (dropped, backlog, marked, new_peak) = {
                let q = self
                    .region
                    .tx_queues
                    .entry((link_id.0, from.0))
                    .or_default();
                let elapsed = now.ticks().saturating_sub(q.last.ticks());
                q.backlog = q.backlog.saturating_sub(elapsed.saturating_mul(rate));
                q.last = now;
                if q.backlog.saturating_add(len) > cap.queue_bytes {
                    (true, q.backlog, false, false)
                } else {
                    let marked = cap.ecn_bytes > 0 && q.backlog + len > cap.ecn_bytes;
                    q.backlog += len;
                    // Rate-limit queue-depth telemetry to new power-of-2
                    // peak buckets so the stream stays bounded however
                    // long the overload lasts.
                    let bucket = 64 - q.backlog.leading_zeros();
                    let new_peak = bucket > q.peak_bucket;
                    if new_peak {
                        q.peak_bucket = bucket;
                    }
                    (false, q.backlog, marked, new_peak)
                }
            };
            if dropped {
                // Tail drop at the sender: the packet never reaches the
                // wire — no tx accounting, no capture, no deliveries.
                self.region.counters.record_queue_drop(link_id, class);
                let what = match class {
                    PacketClass::Control => "ctrl",
                    PacketClass::Data => "data",
                };
                self.emit(from, || telemetry::Event::QueueDrop {
                    what,
                    link: link_id.0 as u32,
                });
                return;
            }
            self.region
                .counters
                .record_queue_depth(link_id, backlog, cap.queue_bytes);
            if marked {
                self.region.counters.record_ecn_mark(link_id);
                self.emit(from, || telemetry::Event::EcnMark {
                    link: link_id.0 as u32,
                });
            }
            if new_peak {
                self.emit(from, || telemetry::Event::QueueDepth {
                    link: link_id.0 as u32,
                    bytes: backlog,
                });
            }
            // Ceil division: a partially serialized packet occupies the
            // wire for the whole remaining tick. The delay is strictly
            // positive (backlog now includes this packet), so capacity
            // can only push deliveries later — the conservative
            // cross-region lookahead bound still holds.
            qdelay = Duration(backlog.div_ceil(rate));
        }
        self.region
            .counters
            .record_tx(link_id, class, proto, packet.len(), self.region.now);
        if let Some(limit) = self.shared.capture_limit {
            if limit > 0 {
                let cs = self.region.cap_seq;
                self.region.cap_seq += 1;
                let cap = &mut self.region.capture;
                // Keep the canonically-*smallest* `limit` records, not the
                // first-inserted: same-tick dispatch tags are keyed by the
                // receiving node and can invert relative to heap (event-tag)
                // order, so insertion order is not canonical order even
                // within one region. Bounded replacement preserves the
                // invariant `captured()` relies on.
                let full = cap.len() >= limit;
                let evict = if full {
                    let (i, (t, c, _)) = cap
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, (t, c, _))| (*t, *c))
                        .expect("non-empty capture shard");
                    if (self.tag, cs) < (*t, *c) {
                        Some(i)
                    } else {
                        None
                    }
                } else {
                    None
                };
                if !full || evict.is_some() {
                    let rec = CaptureRecord {
                        at: self.region.now,
                        link: link_id,
                        from,
                        summary: crate::trace::describe_packet(&packet),
                    };
                    match evict {
                        Some(i) => cap[i] = (self.tag, cs, rec),
                        None => cap.push((self.tag, cs, rec)),
                    }
                }
            }
        }
        let delay = link.delay;
        let loss = link.loss;
        let chan = link.channel;
        let n_att = link.attachments.len();
        let at = self.region.now + delay + qdelay;
        // One shared buffer for the whole fan-out; each delivery below is
        // a refcount bump, not a copy of the packet bytes. Attachments are
        // walked by index (re-reading the shared link each step) so the
        // fan-out allocates nothing beyond the Arc itself — collecting the
        // destination list first cost a Vec per transmit on the hot path.
        let packet: Arc<[u8]> = packet.into();
        for ai in 0..n_att {
            let (n, i) = self.shared.links[link_id.0].attachments[ai];
            if (n, i) == (from, iface) {
                continue;
            }
            if !self.shared.node_up[n.0] {
                self.region.counters.record_pkt_dropped_node_down();
                continue;
            }
            if loss > 0.0 && self.region.rngs[self.slot].gen::<f64>() < loss {
                self.region.counters.record_loss(link_id);
                continue;
            }
            // Adversarial channel: per-receiver rolls in a fixed order
            // (duplicate, then corrupt and reorder per copy) so traces are
            // a pure function of the seed. Each roll happens only when its
            // probability is nonzero — a clean channel consumes no
            // randomness and pre-existing traces stay byte-identical.
            let copies = if chan.duplicate_pm > 0
                && self.region.rngs[self.slot].gen_range(0..1000) < chan.duplicate_pm
            {
                self.region.counters.record_duplicated(link_id);
                self.emit(n, || telemetry::Event::ChannelImpaired {
                    what: "duplicate",
                    link: link_id.0 as u32,
                });
                2
            } else {
                1
            };
            for _ in 0..copies {
                let mut copy = packet.clone();
                let mut due = at;
                if chan.corrupt_pm > 0
                    && self.region.rngs[self.slot].gen_range(0..1000) < chan.corrupt_pm
                {
                    // Flip one random bit of one random byte. The shared
                    // Arc must never be mutated (other receivers see the
                    // same buffer), so the corrupted copy gets its own
                    // private allocation.
                    let mut bytes = copy.to_vec();
                    if !bytes.is_empty() {
                        let idx = self.region.rngs[self.slot].gen_range(0..bytes.len());
                        let bit = 1u8 << self.region.rngs[self.slot].gen_range(0..8u32);
                        bytes[idx] ^= bit;
                    }
                    copy = bytes.into();
                    self.region.counters.record_corrupted(link_id);
                    self.emit(n, || telemetry::Event::ChannelImpaired {
                        what: "corrupt",
                        link: link_id.0 as u32,
                    });
                }
                if chan.reorder_pm > 0
                    && self.region.rngs[self.slot].gen_range(0..1000) < chan.reorder_pm
                {
                    due += Duration(self.region.rngs[self.slot].gen_range(1..=chan.jitter.max(1)));
                    self.region.counters.record_reordered(link_id);
                    self.emit(n, || telemetry::Event::ChannelImpaired {
                        what: "reorder",
                        link: link_id.0 as u32,
                    });
                }
                self.schedule_deliver(due, n, i, copy, link_id);
            }
        }
    }

    /// Transmit a serialized packet out of `iface`.
    pub fn send(&mut self, iface: IfaceId, packet: Vec<u8>) {
        debug_assert!(
            iface.index() < self.iface_count(),
            "send on nonexistent interface {iface:?}"
        );
        self.transmit(iface, packet);
    }

    /// Arrange for [`Node::on_timer`] to be called with `token` after `d`.
    pub fn set_timer(&mut self, d: Duration, token: u64) -> TimerId {
        self.set_timer_at(self.region.now + d, token)
    }

    /// Arrange for [`Node::on_timer`] to be called with `token` at absolute
    /// time `at` (clamped to now: a past deadline fires this instant, after
    /// the current event). Returns a handle for [`Ctx::cancel_timer`].
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) -> TimerId {
        let at = at.max(self.region.now);
        let me = self.node;
        self.emit(me, || telemetry::Event::TimerArmed {
            token,
            deadline: at.ticks(),
        });
        let tag = self.next_tag(at);
        self.region
            .push_event(tag, self.tag, Event::Timer { node: me, token })
    }

    /// Cancel a pending timer. Returns `true` if the timer was still
    /// pending and belonged to this node; stale handles (the timer already
    /// fired, was cancelled, or the slot was recycled) are a no-op. The
    /// heap entry stays behind and is skipped — and counted as stale — when
    /// popped.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        let Some(s) = self.region.events.get(id.slot) else {
            return false;
        };
        if s.gen != id.gen {
            return false;
        }
        match s.ev {
            Some(Event::Timer { node, token }) if node == self.node => {
                self.region.vacate(id.slot);
                let me = self.node;
                self.emit(me, || telemetry::Event::TimerCancelled { token });
                true
            }
            _ => false,
        }
    }

    /// Seeded randomness for protocol jitter (e.g. IGMP report delays).
    /// Each node draws from its own stream — a pure function of the world
    /// seed and the node index — so one node's draws can never perturb
    /// another's, whatever the partition.
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.region.rngs[self.slot]
    }

    /// Is the link behind `iface` currently up?
    pub fn iface_up(&self, iface: IfaceId) -> bool {
        let link = self.shared.ifaces[self.node.0][iface.index()];
        self.shared.links[link.0].up
    }

    /// Record that a data packet was delivered to a locally attached group
    /// member (for the experiment counters).
    pub fn count_local_delivery(&mut self) {
        self.region.counters.record_local_delivery(self.node);
    }

    /// Record that a received payload failed to decode and was dropped
    /// (see [`crate::Counters::total_decode_failures`]), emitting one
    /// telemetry [`telemetry::Event::DecodeFailed`] mark.
    pub fn count_decode_failure(&mut self, iface: IfaceId, kind: &'static str) {
        self.region.counters.record_decode_failure(self.node);
        let me = self.node;
        self.emit(me, || telemetry::Event::DecodeFailed {
            kind,
            iface: iface.0,
        });
    }
}

/// A scheduled script, ordered by `(at, seq)` — scripts live in a
/// world-level queue on the main thread (their closures mutate the whole
/// world, so they are natural barriers) and all scripts at tick `t` run
/// before any node event at tick `t`.
struct ScriptEntry {
    at: SimTime,
    seq: u64,
    f: Box<dyn FnOnce(&mut World)>,
}

impl PartialEq for ScriptEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for ScriptEntry {}

impl PartialOrd for ScriptEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScriptEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulation world.
pub struct World {
    regions: Vec<Region>,
    shared: Shared,
    scripts: BinaryHeap<ScriptEntry>,
    script_seq: u64,
    /// Counter shard for world-level dispatches (scripts).
    world_counters: Counters,
    telem: Option<telemetry::SharedSink>,
    seed: u64,
    threads: usize,
    /// Conservative lookahead: `Some(min cross-region link delay)` when
    /// more than one region and at least one cross link; `None` means
    /// windows are unbounded (single region, or no cross traffic).
    lookahead: Option<Duration>,
    started: bool,
    now: SimTime,
    /// Identity tag of the script currently executing, if any: the
    /// causal root for fault marks and for every barrier dispatch the
    /// script performs.
    cur_script: Option<Tag>,
    /// Whether per-region wall-clock/event attribution is collected
    /// (see [`World::enable_profile`]).
    profile: bool,
    prof_windows: u64,
    prof_barrier_nanos: u64,
}

impl Default for World {
    fn default() -> Self {
        Self::new(0)
    }
}

impl World {
    /// Create an empty world whose RNG streams derive from `seed`.
    pub fn new(seed: u64) -> World {
        World {
            regions: vec![Region::new(0)],
            shared: Shared {
                links: Vec::new(),
                ifaces: Vec::new(),
                node_up: Vec::new(),
                region_of: Vec::new(),
                slot_of: Vec::new(),
                capture_limit: None,
            },
            scripts: BinaryHeap::new(),
            script_seq: 0,
            world_counters: Counters::default(),
            telem: None,
            seed,
            threads: 1,
            lookahead: None,
            started: false,
            now: SimTime::ZERO,
            cur_script: None,
            profile: false,
            prof_windows: 0,
            prof_barrier_nanos: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Add a node; returns its index. New nodes land in region 0 until
    /// [`World::set_partition`]/[`World::parallelize`] reassigns them.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeIdx {
        assert!(!self.started, "cannot add nodes after start");
        let idx = self.shared.region_of.len();
        let r = &mut self.regions[0];
        self.shared.region_of.push(0);
        self.shared.slot_of.push(r.nodes.len() as u32);
        r.nodes.push(Some(node));
        r.rngs.push(StdRng::seed_from_u64(par::mix(
            self.seed,
            NODE_RNG_STREAM,
            idx as u64,
        )));
        r.dispatch_seq.push(0);
        self.shared.ifaces.push(Vec::new());
        self.shared.node_up.push(true);
        NodeIdx(idx)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.shared.region_of.len()
    }

    /// Number of regions in the current partition.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The conservative lookahead: minimum delay over links whose
    /// attachments span more than one region (`None` when single-region
    /// or no link crosses a region boundary).
    pub fn cross_region_lookahead(&self) -> Option<Duration> {
        if self.regions.len() <= 1 {
            return None;
        }
        self.shared
            .links
            .iter()
            .filter(|l| {
                let mut rs = l
                    .attachments
                    .iter()
                    .map(|(n, _)| self.shared.region_of[n.0]);
                let first = rs.next();
                rs.any(|r| Some(r) != first)
            })
            .map(|l| l.delay)
            .min()
    }

    /// Assign every node to a region (`assign[node] = region id`).
    /// Region ids are renumbered densely by first appearance. Must be
    /// called before [`World::start`]; the default is one region.
    ///
    /// Correctness does not depend on the assignment — any partition
    /// yields byte-identical results — but *liveness* of the parallel
    /// windows requires every cross-region link to have delay ≥ 1 tick
    /// (asserted at start).
    pub fn set_partition(&mut self, assign: &[u32]) {
        assert!(!self.started, "cannot repartition after start");
        assert_eq!(
            assign.len(),
            self.node_count(),
            "one region id per node required"
        );
        // Densify region ids by first appearance.
        let mut lut: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut next = 0u32;
        let dense: Vec<u32> = assign
            .iter()
            .map(|&a| {
                *lut.entry(a).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
            .collect();
        // Pull every node (and its RNG stream) out in global index order.
        let mut moved: Vec<(Box<dyn Node>, StdRng)> = Vec::with_capacity(assign.len());
        for i in 0..assign.len() {
            let r = &mut self.regions[self.shared.region_of[i] as usize];
            let slot = self.shared.slot_of[i] as usize;
            let node = r.nodes[slot].take().expect("node is not mid-callback");
            let rng = r.rngs[slot].clone();
            moved.push((node, rng));
        }
        // Rebuild the regions.
        self.regions = (0..next.max(1)).map(Region::new).collect();
        self.shared.region_of = dense.clone();
        for (i, (node, rng)) in moved.into_iter().enumerate() {
            let r = &mut self.regions[dense[i] as usize];
            self.shared.slot_of[i] = r.nodes.len() as u32;
            r.nodes.push(Some(node));
            r.rngs.push(rng);
            r.dispatch_seq.push(0);
        }
        self.lookahead = self.cross_region_lookahead();
    }

    /// Opt into parallel execution with `threads` workers: runs the
    /// delay-aware auto-partitioner ([`crate::partition::auto_partition`])
    /// targeting one region per thread. `threads == 1` keeps the default
    /// single region (and runs inline with no thread machinery). Results
    /// are byte-identical for every thread count.
    pub fn parallelize(&mut self, threads: usize) {
        assert!(!self.started, "cannot repartition after start");
        let threads = threads.max(1);
        self.threads = threads;
        if threads > 1 && self.node_count() > 1 {
            let assign =
                crate::partition::auto_partition(self.node_count(), &self.shared.links, threads);
            self.set_partition(&assign);
        }
    }

    fn attach(&mut self, node: NodeIdx, link: LinkId) -> IfaceId {
        let ifaces = &mut self.shared.ifaces[node.0];
        ifaces.push(link);
        let iface = IfaceId(ifaces.len() as u32 - 1);
        self.shared.links[link.0].attachments.push((node, iface));
        iface
    }

    /// Add a point-to-point link; returns `(link, iface at a, iface at b)`.
    pub fn add_p2p(
        &mut self,
        a: NodeIdx,
        b: NodeIdx,
        delay: Duration,
    ) -> (LinkId, IfaceId, IfaceId) {
        assert_ne!(a, b, "p2p link endpoints must differ");
        let id = LinkId(self.shared.links.len());
        self.shared.links.push(Link {
            kind: LinkKind::PointToPoint,
            delay,
            up: true,
            loss: 0.0,
            channel: ChannelModel::CLEAN,
            capacity: LinkCapacity::UNLIMITED,
            attachments: Vec::new(),
        });
        let ia = self.attach(a, id);
        let ib = self.attach(b, id);
        (id, ia, ib)
    }

    /// Add a multi-access LAN joining `nodes`; returns the link id and each
    /// node's new interface, in order.
    pub fn add_lan(&mut self, nodes: &[NodeIdx], delay: Duration) -> (LinkId, Vec<IfaceId>) {
        assert!(nodes.len() >= 2, "a LAN needs at least two attachments");
        let id = LinkId(self.shared.links.len());
        self.shared.links.push(Link {
            kind: LinkKind::Lan,
            delay,
            up: true,
            loss: 0.0,
            channel: ChannelModel::CLEAN,
            capacity: LinkCapacity::UNLIMITED,
            attachments: Vec::new(),
        });
        let ifaces = nodes.iter().map(|&n| self.attach(n, id)).collect();
        (id, ifaces)
    }

    /// Crash `node` with total state loss (§2 robustness: routers "may
    /// fail"). The node's volatile protocol state is dropped via
    /// [`Node::on_crash`], every timer it has armed is cancelled (counted
    /// in [`Counters::timers_cancelled_node_down`]) so no stale wakeup
    /// fires against the corpse, and packets addressed to it are discarded
    /// until [`World::restart_node`]. No-op if the node is already down.
    pub fn crash_node(&mut self, idx: NodeIdx) {
        if !self.shared.node_up[idx.0] {
            return;
        }
        self.shared.node_up[idx.0] = false;
        // Eagerly vacate every armed timer owned by the node (timers
        // always live in the node's own region). The heap entries stay
        // behind and are skipped as stale when popped; what matters is
        // that no Timer event can reach a dead node.
        let r = &mut self.regions[self.shared.region_of[idx.0] as usize];
        let doomed: Vec<usize> = r
            .events
            .iter()
            .enumerate()
            .filter_map(|(slot, s)| match s.ev {
                Some(Event::Timer { node, .. }) if node == idx => Some(slot),
                _ => None,
            })
            .collect();
        for slot in doomed {
            r.vacate(slot);
            r.counters.record_timer_cancelled_node_down();
        }
        let slot = self.shared.slot_of[idx.0] as usize;
        if let Some(node) = r.nodes[slot].as_mut() {
            node.on_crash();
        }
    }

    /// Power a crashed node back up: it cold-boots via
    /// [`Node::on_restart`] with whatever static configuration survived
    /// [`Node::on_crash`]. No-op if the node is already up.
    pub fn restart_node(&mut self, idx: NodeIdx) {
        if self.shared.node_up[idx.0] {
            return;
        }
        self.shared.node_up[idx.0] = true;
        let cause = self.cur_script;
        self.dispatch_at_barrier(idx, EPOCH_EVENT, cause, |n, ctx| n.on_restart(ctx));
    }

    /// Is `node` currently up (not crashed)?
    pub fn is_node_up(&self, idx: NodeIdx) -> bool {
        self.shared.node_up[idx.0]
    }

    /// Take a link up or down (topology-change injection).
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.shared.links[link.0].up = up;
    }

    /// Set a link's independent per-receiver drop probability — a
    /// **fraction**, clamped into `[0, 1]` (NaN clamps to 0, i.e. no
    /// loss). Contrast [`World::set_channel_model`], whose probabilities
    /// are integer per-mille; the module doc's Units section explains
    /// the split.
    pub fn set_link_loss(&mut self, link: LinkId, loss: f64) {
        let loss = if loss.is_nan() {
            0.0
        } else {
            loss.clamp(0.0, 1.0)
        };
        self.shared.links[link.0].loss = loss;
    }

    /// Install (or, with [`LinkCapacity::UNLIMITED`], remove) the
    /// deterministic bandwidth/queue model on a link. Both directions get
    /// the same configuration but independent queues. Like every fault
    /// knob, this is barrier-mutated state: call it from scripts or
    /// between runs, never from inside a node callback. Queue state
    /// already accumulated on the link survives a reconfiguration; an
    /// unlimited link simply stops consulting it.
    pub fn set_link_capacity(&mut self, link: LinkId, cap: LinkCapacity) {
        self.shared.links[link.0].capacity = cap;
    }

    /// Install an adversarial [`ChannelModel`] on a link (corruption,
    /// duplication, reordering). `ChannelModel::CLEAN` restores a clean
    /// channel.
    pub fn set_channel_model(&mut self, link: LinkId, channel: ChannelModel) {
        assert!(channel.corrupt_pm <= 1000, "corrupt_pm is per-mille");
        assert!(channel.duplicate_pm <= 1000, "duplicate_pm is per-mille");
        assert!(channel.reorder_pm <= 1000, "reorder_pm is per-mille");
        self.shared.links[link.0].channel = channel;
    }

    /// Link metadata.
    pub fn link(&self, link: LinkId) -> &Link {
        &self.shared.links[link.0]
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.shared.links.len()
    }

    /// Overhead counters collected so far: the world shard (script
    /// dispatches) merged with every region shard. The merge is
    /// associative and order-independent (see `Counters::merge`), so the
    /// totals are identical for any partition.
    pub fn counters(&self) -> Counters {
        let mut total = self.world_counters.clone();
        for r in &self.regions {
            total.merge(&r.counters);
        }
        total
    }

    /// Reset the overhead counters (e.g. after protocol warm-up, so an
    /// experiment measures steady state only).
    pub fn reset_counters(&mut self) {
        self.world_counters = Counters::default();
        for r in &mut self.regions {
            r.counters = Counters::default();
        }
    }

    /// Attach a structured-event sink for all telemetry: the world's own
    /// events (timer arm / fire / cancel, injected faults) and — via the
    /// [`Node::set_telemetry`] hook wired at start — every node adapter's
    /// protocol events. Telemetry only observes: it consumes no
    /// randomness and takes no behavioral branches, so packet traces
    /// are identical with or without a sink. Events reach `sink` in
    /// canonical event order, whatever the partition or thread count.
    pub fn set_telemetry(&mut self, sink: telemetry::SharedSink) {
        assert!(!self.started, "attach telemetry before start");
        self.telem = Some(sink);
    }

    /// Collect per-region wall-clock and event-count attribution (see
    /// [`crate::profile::SimProfile`]). Profiling is the one place the
    /// simulator reads wall-clock time; it observes only — the event
    /// order, RNG streams, and every deterministic output are untouched.
    /// Must be called before [`World::start`].
    pub fn enable_profile(&mut self) {
        assert!(!self.started, "enable profiling before start");
        self.profile = true;
    }

    /// The attribution profile collected so far, `None` unless
    /// [`World::enable_profile`] was called. Event counts are
    /// deterministic; nanosecond attributions are wall-clock and vary
    /// run to run (never put them in a fingerprint).
    pub fn profile(&self) -> Option<crate::profile::SimProfile> {
        if !self.profile {
            return None;
        }
        Some(crate::profile::SimProfile {
            regions: self.regions.iter().filter_map(|r| r.prof.clone()).collect(),
            windows: self.prof_windows,
            barrier_nanos: self.prof_barrier_nanos,
            script_dispatches: self.world_counters.events_dispatched(),
        })
    }

    /// Emit one telemetry event on behalf of `node` (no-op when no sink
    /// is attached). Scenario scripts use this to mark injected faults
    /// so sinks can measure post-fault reconvergence. Only callable at
    /// barriers (scripts run on the main thread), where region buffers
    /// are already flushed, so direct writes stay in canonical order.
    pub fn emit_event(&mut self, node: NodeIdx, ev: telemetry::Event) {
        if let Some(sink) = &self.telem {
            // The emitting script's identity is the causal root the
            // event hangs off (fault marks are exactly what
            // `CausalIndex::forward_slice` starts from). Outside any
            // script — possible only from test code — fall back to a
            // sentinel script tag.
            let id = self.cur_script.unwrap_or(Tag {
                time: self.now,
                epoch: EPOCH_SCRIPT,
                origin: u32::MAX,
                seq: u64::MAX,
                emit: 0,
            });
            let mut s = sink.lock().expect("sink poisoned");
            s.link(id.event_id(), None);
            s.event_caused(
                node.0 as u32,
                self.now.ticks(),
                &ev,
                telemetry::Provenance {
                    id: id.event_id(),
                    cause: None,
                },
            );
        }
    }

    /// Start capturing packet transmissions — the simulator's `tcpdump`.
    /// Records up to `limit` packets (time, link, sender, human-readable
    /// decode) from now on; calling again clears the buffer.
    pub fn enable_capture(&mut self, limit: usize) {
        self.shared.capture_limit = Some(limit);
        for r in &mut self.regions {
            r.capture.clear();
            r.cap_seq = 0;
        }
    }

    /// The packets captured so far (empty if capture was never enabled),
    /// merged across region shards in canonical transmit order and
    /// truncated to the capture limit. Each region keeps the `limit`
    /// canonically-smallest records it saw, so any record in the true
    /// global first-`limit` (whose region-local rank can only be lower)
    /// is guaranteed to be present in some shard — truncation after the
    /// merge is exact, not partition-dependent.
    pub fn captured(&self) -> Vec<CaptureRecord> {
        let limit = match self.shared.capture_limit {
            Some(l) => l,
            None => return Vec::new(),
        };
        let mut all: Vec<&(Tag, u64, CaptureRecord)> =
            self.regions.iter().flat_map(|r| r.capture.iter()).collect();
        all.sort_by_key(|(tag, cs, _)| (*tag, *cs));
        all.into_iter()
            .take(limit)
            .map(|(_, _, r)| r.clone())
            .collect()
    }

    /// Schedule an arbitrary scripted action (host joins a group, link
    /// fails, ...) at absolute time `at`. Scripts are barriers: all
    /// scripts at tick `t` run (in scheduling order) before any node
    /// event at tick `t`.
    pub fn at(&mut self, at: SimTime, f: impl FnOnce(&mut World) + 'static) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.script_seq += 1;
        self.scripts.push(ScriptEntry {
            at,
            seq: self.script_seq,
            f: Box::new(f),
        });
    }

    /// Immutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the node is of a different type (a test bug, not a runtime
    /// condition).
    pub fn node<T: 'static>(&self, idx: NodeIdx) -> &T {
        self.regions[self.shared.region_of[idx.0] as usize].nodes
            [self.shared.slot_of[idx.0] as usize]
            .as_ref()
            .expect("node is not mid-callback")
            .as_any()
            .downcast_ref()
            .expect("node type mismatch")
    }

    /// Mutable access to a node, downcast to its concrete type.
    pub fn node_mut<T: 'static>(&mut self, idx: NodeIdx) -> &mut T {
        self.regions[self.shared.region_of[idx.0] as usize].nodes
            [self.shared.slot_of[idx.0] as usize]
            .as_mut()
            .expect("node is not mid-callback")
            .as_any_mut()
            .downcast_mut()
            .expect("node type mismatch")
    }

    /// Run one node callback at a barrier (scripts, start, restart): the
    /// owning region's clock is pulled up to world time, the dispatch
    /// runs inline on the main thread, any cross-region events it
    /// creates are routed immediately, and its telemetry is flushed so
    /// the stream stays in canonical order around direct
    /// [`World::emit_event`] writes.
    fn dispatch_at_barrier(
        &mut self,
        idx: NodeIdx,
        epoch: u8,
        cause: Option<Tag>,
        f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>),
    ) {
        let rid = self.shared.region_of[idx.0] as usize;
        let now = self.now;
        let region = &mut self.regions[rid];
        debug_assert!(region.now <= now, "region ahead of barrier time");
        region.now = now;
        region.dispatch(&self.shared, idx, epoch, cause, f);
        self.route_mail();
        self.flush_telemetry();
    }

    /// Invoke a node's [`Node::on_timer`]-style entry from scripted events,
    /// giving scenario code a way to poke engines with full context. The
    /// dispatch's causal parent is the executing script, so everything a
    /// scripted poke sets in motion traces back to the script.
    pub fn call_node(&mut self, idx: NodeIdx, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>)) {
        let cause = self.cur_script;
        self.dispatch_at_barrier(idx, EPOCH_EVENT, cause, f);
    }

    /// Deliver `on_start` to every node (idempotent; called automatically by
    /// the run methods). With telemetry attached, this is also where every
    /// node receives its per-region buffered [`telemetry::Telem`] handle.
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.lookahead = self.cross_region_lookahead();
        if self.regions.len() > 1 {
            if let Some(l) = self.lookahead {
                assert!(
                    l.ticks() >= 1,
                    "cross-region links must have delay >= 1 tick (conservative lookahead)"
                );
            }
        }
        if self.telem.is_some() {
            for r in &mut self.regions {
                let buf = Arc::new(Mutex::new(RegionBuf::default()));
                r.buf = Some(Arc::clone(&buf));
            }
            for i in 0..self.node_count() {
                let rid = self.shared.region_of[i] as usize;
                let buf = self.regions[rid].buf.as_ref().expect("buffer just created");
                let sink: telemetry::SharedSink = Arc::clone(buf) as telemetry::SharedSink;
                let slot = self.shared.slot_of[i] as usize;
                self.regions[rid].nodes[slot]
                    .as_mut()
                    .expect("node is not mid-callback")
                    .set_telemetry(telemetry::Telem::attached(sink, i as u32));
            }
        }
        if self.profile {
            for r in &mut self.regions {
                r.prof = Some(crate::profile::RegionProfile::new(r.id));
            }
        }
        for i in 0..self.node_count() {
            self.dispatch_at_barrier(NodeIdx(i), EPOCH_START, None, |n, ctx| n.on_start(ctx));
        }
    }

    /// The earliest pending region-event time across all regions.
    fn min_event_time(&self) -> Option<SimTime> {
        self.regions
            .iter()
            .filter_map(|r| r.heap.peek().map(|Reverse((tag, _, _))| tag.time))
            .min()
    }

    /// Drain every region's outbox into the destination regions' heaps.
    /// Order is irrelevant: heaps order by the canonical tag.
    fn route_mail(&mut self) {
        let mut mail: Vec<Outgoing> = Vec::new();
        for r in &mut self.regions {
            mail.append(&mut r.outbox);
        }
        for m in mail {
            let _ = self.regions[m.dst as usize].push_event(
                m.tag,
                m.cause,
                Event::Deliver {
                    node: m.node,
                    iface: m.iface,
                    packet: m.packet,
                    link: m.link,
                },
            );
        }
    }

    /// Merge all region telemetry buffers into the user sink in
    /// canonical `(tag, idx)` order and clear them. Called at every
    /// barrier, so each flushed batch covers a disjoint slice of the
    /// canonical order and concatenation preserves it.
    fn flush_telemetry(&mut self) {
        let Some(sink) = &self.telem else {
            return;
        };
        let mut batch: Vec<BufEntry> = Vec::new();
        let mut links: Vec<(Tag, Option<Tag>)> = Vec::new();
        for r in &self.regions {
            if let Some(buf) = &r.buf {
                let mut guard = buf.lock().expect("region buffer poisoned");
                batch.append(&mut guard.entries);
                links.append(&mut guard.links);
            }
        }
        if batch.is_empty() && links.is_empty() {
            return;
        }
        batch.sort_by_key(|a| (a.tag, a.idx));
        links.sort_unstable();
        let mut s = sink.lock().expect("sink poisoned");
        // Provenance edges first (every dispatch, silent ones included),
        // then the events themselves; both in canonical order, so the
        // stream a sink sees is identical for any partition.
        for (id, cause) in links {
            s.link(id.event_id(), cause.map(Tag::event_id));
        }
        for e in batch {
            s.event_caused(
                e.node,
                e.at,
                &e.ev,
                telemetry::Provenance {
                    id: e.tag.event_id(),
                    cause: e.cause.map(Tag::event_id),
                },
            );
        }
    }

    /// Run one lock-step window: every region processes its events due
    /// before `bound` (in parallel when `threads > 1`), then cross-region
    /// mail is routed and telemetry merged at the barrier. Returns the
    /// number of heap pops across all regions.
    fn run_window_all(&mut self, bound: SimTime, budget: usize) -> usize {
        let n: usize = {
            let shared = &self.shared;
            par::run_regions(self.threads, &mut self.regions, |_, r| {
                r.run_window(shared, bound, budget)
            })
            .into_iter()
            .sum()
        };
        let t0 = self.profile.then(std::time::Instant::now);
        self.route_mail();
        self.flush_telemetry();
        if let Some(t0) = t0 {
            self.prof_windows += 1;
            self.prof_barrier_nanos += t0.elapsed().as_nanos() as u64;
        }
        n
    }

    /// Pop and run every script scheduled for exactly tick `t` (they may
    /// schedule more work, including further scripts at `t`). Returns the
    /// number of scripts dispatched.
    fn run_scripts_at(&mut self, t: SimTime) -> usize {
        let mut n = 0;
        while self.scripts.peek().map(|s| s.at) == Some(t) {
            let entry = self.scripts.pop().expect("peeked script vanished");
            self.world_counters.record_dispatch();
            // The script's canonical identity: the causal root for the
            // fault marks it emits and the dispatches it performs.
            // Scripts execute in (time, seq) order, which is exactly
            // tag order, so identities ascend like every other tag.
            self.cur_script = Some(Tag {
                time: t,
                epoch: EPOCH_SCRIPT,
                origin: 0,
                seq: entry.seq,
                emit: 0,
            });
            (entry.f)(self);
            self.cur_script = None;
            n += 1;
            self.flush_telemetry();
        }
        n
    }

    /// Run until the event queue is empty or simulated time would exceed
    /// `until`. Returns the number of events processed (scripts plus
    /// region heap pops, stale skips included).
    pub fn run_until(&mut self, until: SimTime) -> usize {
        self.start();
        let mut n = 0;
        loop {
            let t_ev = self.min_event_time();
            let t_sc = self.scripts.peek().map(|s| s.at);
            let t = match t_ev.into_iter().chain(t_sc).min() {
                Some(t) => t,
                None => break,
            };
            if t > until {
                break;
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            if t_sc == Some(t) {
                n += self.run_scripts_at(t);
                continue;
            }
            let mut bound = SimTime(until.ticks().saturating_add(1));
            if let Some(ts) = t_sc {
                bound = bound.min(ts);
            }
            if let Some(l) = self.lookahead {
                bound = bound.min(SimTime(t.ticks().saturating_add(l.ticks())));
            }
            n += self.run_window_all(bound, usize::MAX);
            self.now = self.now.max(SimTime(bound.ticks().saturating_sub(1)));
        }
        // Advance the clock to the requested horizon even if idle.
        if self.now < until {
            self.now = until;
        }
        n
    }

    /// Run until the queue drains completely (only sensible when no node
    /// sets periodic timers), or until `max_events` as a runaway guard
    /// (per region within a window, exact in the default single-region
    /// world).
    pub fn run_to_idle(&mut self, max_events: usize) -> usize {
        self.start();
        let mut n = 0;
        while n < max_events {
            let t_ev = self.min_event_time();
            let t_sc = self.scripts.peek().map(|s| s.at);
            let t = match t_ev.into_iter().chain(t_sc).min() {
                Some(t) => t,
                None => break,
            };
            self.now = t;
            if t_sc == Some(t) {
                let entry = self.scripts.pop().expect("peeked script vanished");
                self.world_counters.record_dispatch();
                self.cur_script = Some(Tag {
                    time: t,
                    epoch: EPOCH_SCRIPT,
                    origin: 0,
                    seq: entry.seq,
                    emit: 0,
                });
                (entry.f)(self);
                self.cur_script = None;
                n += 1;
                self.flush_telemetry();
            } else {
                let mut bound = SimTime(u64::MAX);
                if let Some(ts) = t_sc {
                    bound = ts;
                }
                if let Some(l) = self.lookahead {
                    bound = bound.min(SimTime(t.ticks().saturating_add(l.ticks())));
                }
                let c = self.run_window_all(bound, max_events - n);
                n += c;
                if c == 0 {
                    break;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test node that echoes every packet back out the interface it came
    /// in on, decrementing the first byte as a TTL; records deliveries.
    struct Echo {
        received: Vec<(u64, IfaceId, Vec<u8>)>,
        timers: Vec<(u64, u64)>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                received: Vec::new(),
                timers: Vec::new(),
            }
        }
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
            self.received
                .push((ctx.now().ticks(), iface, packet.to_vec()));
            if let Some((&ttl, rest)) = packet.split_first() {
                if ttl > 0 {
                    let mut next = vec![ttl - 1];
                    next.extend_from_slice(rest);
                    ctx.send(iface, next);
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.timers.push((ctx.now().ticks(), token));
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Records deliveries and nothing else — no retransmission. The
    /// channel-model tests need this: corruption can flip a bit in the
    /// byte [`Echo`] treats as a TTL, and an echoing receiver would then
    /// amplify duplicated copies into an unbounded packet storm.
    #[derive(Default)]
    struct Quiet {
        received: Vec<(u64, IfaceId, Vec<u8>)>,
    }

    impl Node for Quiet {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
            self.received
                .push((ctx.now().ticks(), iface, packet.to_vec()));
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn quiet_world() -> (World, NodeIdx, NodeIdx, LinkId) {
        let mut w = World::new(1);
        let a = w.add_node(Box::<Quiet>::default());
        let b = w.add_node(Box::<Quiet>::default());
        let (l, _, _) = w.add_p2p(a, b, Duration(3));
        (w, a, b, l)
    }

    fn two_node_world() -> (World, NodeIdx, NodeIdx, LinkId) {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        let b = w.add_node(Box::new(Echo::new()));
        let (l, _, _) = w.add_p2p(a, b, Duration(3));
        (w, a, b, l)
    }

    #[test]
    fn p2p_delivery_with_delay() {
        let (mut w, a, b, _) = two_node_world();
        w.at(SimTime(10), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 42]));
        });
        w.run_until(SimTime(100));
        let eb: &Echo = w.node(b);
        assert_eq!(eb.received.len(), 1);
        assert_eq!(eb.received[0].0, 13); // 10 + delay 3
        assert_eq!(eb.received[0].2, vec![0, 42]);
        // TTL 0: no echo back.
        let ea: &Echo = w.node(a);
        assert!(ea.received.is_empty());
    }

    #[test]
    fn ping_pong_until_ttl_exhausted() {
        let (mut w, a, b, _) = two_node_world();
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![5]));
        });
        w.run_until(SimTime(1000));
        let ea: &Echo = w.node(a);
        let eb: &Echo = w.node(b);
        // b receives ttl=5,3,1; a receives ttl=4,2,0.
        assert_eq!(eb.received.len(), 3);
        assert_eq!(ea.received.len(), 3);
        assert_eq!(ea.received.last().unwrap().2, vec![0]);
    }

    #[test]
    fn lan_broadcast_excludes_sender() {
        let mut w = World::new(1);
        let nodes: Vec<NodeIdx> = (0..4).map(|_| w.add_node(Box::new(Echo::new()))).collect();
        let (_, _ifaces) = w.add_lan(&nodes, Duration(1));
        let sender = nodes[2];
        w.at(SimTime(0), move |w| {
            w.call_node(sender, |_n, ctx| ctx.send(IfaceId(0), vec![0, 7]));
        });
        w.run_until(SimTime(10));
        for (i, &n) in nodes.iter().enumerate() {
            let e: &Echo = w.node(n);
            if n == sender {
                assert!(e.received.is_empty(), "sender must not hear itself");
            } else {
                assert_eq!(e.received.len(), 1, "node {i} missed the broadcast");
                assert_eq!(e.received[0].0, 1);
            }
        }
    }

    /// The LAN fan-out shares one `Arc` buffer across all receivers:
    /// every receiver must see the exact payload bytes, and a receiver
    /// re-sending a mutated copy (Echo decrements the TTL byte) must not
    /// disturb what the others saw.
    #[test]
    fn lan_fanout_delivers_identical_payload_bytes() {
        let mut w = World::new(1);
        let nodes: Vec<NodeIdx> = (0..4).map(|_| w.add_node(Box::new(Echo::new()))).collect();
        w.add_lan(&nodes, Duration(1));
        let sender = nodes[0];
        let payload = vec![1, 0xAB, 0xCD, 0xEF];
        let sent = payload.clone();
        w.at(SimTime(0), move |w| {
            w.call_node(sender, |_n, ctx| ctx.send(IfaceId(0), sent));
        });
        w.run_until(SimTime(10));
        for &n in &nodes[1..] {
            let e: &Echo = w.node(n);
            assert_eq!(e.received.len(), 3, "broadcast + two peer echoes");
            assert_eq!(e.received[0].2, payload, "original payload corrupted");
            // The peers' echoes arrive with the TTL byte decremented —
            // their mutation happened on private buffers.
            assert_eq!(e.received[1].2, vec![0, 0xAB, 0xCD, 0xEF]);
            assert_eq!(e.received[2].2, vec![0, 0xAB, 0xCD, 0xEF]);
        }
        let es: &Echo = w.node(sender);
        assert_eq!(es.received.len(), 3, "one echo per receiver");
        assert!(es.received.iter().all(|r| r.2 == [0, 0xAB, 0xCD, 0xEF]));
    }

    #[test]
    fn timers_fire_in_order() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                ctx.set_timer(Duration(10), 1);
                ctx.set_timer(Duration(5), 2);
                ctx.set_timer(Duration(10), 3); // same time as token 1: FIFO
            });
        });
        w.run_until(SimTime(100));
        let e: &Echo = w.node(a);
        assert_eq!(e.timers, vec![(5, 2), (10, 1), (10, 3)]);
    }

    #[test]
    fn cancelled_timer_is_skipped_and_counted_stale() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                let t1 = ctx.set_timer(Duration(10), 1);
                ctx.set_timer_at(SimTime(5), 2);
                assert!(ctx.cancel_timer(t1));
                assert!(!ctx.cancel_timer(t1), "double cancel must be a no-op");
            });
        });
        w.run_until(SimTime(100));
        let e: &Echo = w.node(a);
        assert_eq!(e.timers, vec![(5, 2)]);
        assert_eq!(w.counters().timers_fired(), 1);
        assert_eq!(w.counters().timers_skipped_stale(), 1);
    }

    #[test]
    fn stale_handle_cannot_cancel_recycled_slot() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                let t1 = ctx.set_timer(Duration(10), 1);
                assert!(ctx.cancel_timer(t1));
                // This reuses t1's arena slot under a new generation.
                ctx.set_timer(Duration(20), 2);
                assert!(
                    !ctx.cancel_timer(t1),
                    "generation must protect the slot's new tenant"
                );
            });
        });
        w.run_until(SimTime(100));
        let e: &Echo = w.node(a);
        assert_eq!(e.timers, vec![(20, 2)]);
    }

    #[test]
    fn set_timer_at_past_deadline_fires_now() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        w.at(SimTime(7), move |w| {
            w.call_node(a, |_n, ctx| {
                ctx.set_timer_at(SimTime(3), 9); // already past: clamped to now
            });
        });
        w.run_until(SimTime(100));
        let e: &Echo = w.node(a);
        assert_eq!(e.timers, vec![(7, 9)]);
    }

    #[test]
    fn event_dispatch_counters() {
        let (mut w, a, _b, _l) = two_node_world();
        w.at(SimTime(10), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 42]));
        });
        w.run_until(SimTime(100));
        // One script + one delivery dispatched; no timers anywhere.
        assert_eq!(w.counters().events_dispatched(), 2);
        assert_eq!(w.counters().timers_fired(), 0);
        assert_eq!(w.counters().timers_skipped_stale(), 0);
        assert_eq!(w.counters().rx_pkts(), 1);
    }

    #[test]
    fn downed_link_drops_traffic() {
        let (mut w, a, b, l) = two_node_world();
        w.at(SimTime(0), move |w| w.set_link_up(l, false));
        w.at(SimTime(1), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![3]));
        });
        w.run_until(SimTime(50));
        let eb: &Echo = w.node(b);
        assert!(eb.received.is_empty());
    }

    #[test]
    fn lossy_link_drops_some() {
        let (mut w, a, _b, l) = two_node_world();
        w.set_link_loss(l, 0.5);
        for t in 0..200 {
            w.at(SimTime(t), move |w| {
                w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0]));
            });
        }
        w.run_until(SimTime(1000));
        let eb: &Echo = w.node(NodeIdx(1));
        assert!(
            eb.received.len() > 50,
            "lost too many: {}",
            eb.received.len()
        );
        assert!(
            eb.received.len() < 150,
            "lost too few: {}",
            eb.received.len()
        );
        assert!(w.counters().losses() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let (mut w, a, _b, l) = two_node_world();
            w.set_link_loss(l, 0.3);
            for t in 0..50 {
                w.at(SimTime(t), move |w| {
                    w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, t as u8]));
                });
            }
            w.run_until(SimTime(500));
            // Drain rather than clone: the world is dropped right after,
            // so the copy was pure waste.
            let eb: &mut Echo = w.node_mut(NodeIdx(1));
            std::mem::take(&mut eb.received)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clock_advances_to_horizon_when_idle() {
        let (mut w, _a, _b, _l) = two_node_world();
        w.run_until(SimTime(123));
        assert_eq!(w.now(), SimTime(123));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_rejected() {
        let (mut w, _a, _b, _l) = two_node_world();
        w.run_until(SimTime(10));
        w.at(SimTime(5), |_| {});
    }

    #[test]
    fn crash_cancels_armed_timers() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                ctx.set_timer(Duration(10), 1);
                ctx.set_timer(Duration(20), 2);
            });
        });
        w.at(SimTime(5), move |w| w.crash_node(a));
        w.run_until(SimTime(100));
        let e: &Echo = w.node(a);
        assert!(e.timers.is_empty(), "no timer may fire on a dead node");
        assert_eq!(w.counters().timers_cancelled_node_down(), 2);
        assert_eq!(w.counters().timers_fired(), 0);
        assert!(!w.is_node_up(a));
    }

    #[test]
    fn down_node_drops_deliveries_and_restart_revives() {
        let (mut w, a, b, _l) = two_node_world();
        w.at(SimTime(0), move |w| w.crash_node(b));
        // Transmitted while b is down: dropped at the dead attachment.
        w.at(SimTime(1), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 1]));
        });
        w.at(SimTime(10), move |w| w.restart_node(b));
        // Transmitted after restart: delivered normally.
        w.at(SimTime(20), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 2]));
        });
        w.run_until(SimTime(100));
        let eb: &Echo = w.node(b);
        assert_eq!(eb.received.len(), 1, "only the post-restart packet");
        assert_eq!(eb.received[0].2, vec![0, 2]);
        assert_eq!(w.counters().pkts_dropped_node_down(), 1);
        assert!(w.is_node_up(b));
    }

    #[test]
    fn in_flight_packet_to_crashing_node_is_dropped() {
        // delay 3: send at t=0, crash at t=1, delivery due t=3 is discarded.
        let (mut w, a, b, _l) = two_node_world();
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 9]));
        });
        w.at(SimTime(1), move |w| w.crash_node(b));
        w.run_until(SimTime(100));
        let eb: &Echo = w.node(b);
        assert!(eb.received.is_empty());
        assert_eq!(w.counters().pkts_dropped_node_down(), 1);
    }

    #[test]
    fn channel_corruption_flips_one_bit_and_counts() {
        let (mut w, a, _b, l) = quiet_world();
        w.set_channel_model(
            l,
            ChannelModel {
                corrupt_pm: 1000, // always corrupt
                ..ChannelModel::CLEAN
            },
        );
        let payload = vec![0u8, 0xAA, 0xBB, 0xCC];
        let sent = payload.clone();
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), sent));
        });
        w.run_until(SimTime(50));
        let eb: &Quiet = w.node(NodeIdx(1));
        assert_eq!(eb.received.len(), 1, "corruption must not drop the packet");
        let got = &eb.received[0].2;
        assert_eq!(got.len(), payload.len());
        let diff: u32 = got
            .iter()
            .zip(&payload)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
        assert_eq!(w.counters().pkts_corrupted(), 1);
    }

    #[test]
    fn channel_duplication_delivers_twice() {
        let (mut w, a, _b, l) = quiet_world();
        w.set_channel_model(
            l,
            ChannelModel {
                duplicate_pm: 1000,
                ..ChannelModel::CLEAN
            },
        );
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 7]));
        });
        w.run_until(SimTime(50));
        let eb: &Quiet = w.node(NodeIdx(1));
        assert_eq!(eb.received.len(), 2, "duplicate delivers two copies");
        assert_eq!(eb.received[0].2, eb.received[1].2);
        assert_eq!(w.counters().pkts_duplicated(), 1);
    }

    #[test]
    fn channel_reorder_delays_past_later_traffic() {
        let (mut w, a, _b, l) = quiet_world();
        w.set_channel_model(
            l,
            ChannelModel {
                reorder_pm: 1000,
                jitter: 100,
                ..ChannelModel::CLEAN
            },
        );
        // First packet is delayed by 1..=100 extra ticks; switch the
        // channel off before the second so it travels clean — the second
        // can overtake the first whenever the jitter draw exceeds 5.
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 1]));
        });
        w.at(SimTime(1), move |w| {
            w.set_channel_model(l, ChannelModel::CLEAN)
        });
        w.at(SimTime(5), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 2]));
        });
        w.run_until(SimTime(500));
        let eb: &Quiet = w.node(NodeIdx(1));
        assert_eq!(eb.received.len(), 2);
        assert_eq!(w.counters().pkts_reordered(), 1);
        // Delivery time of the jittered copy is strictly later than clean.
        assert!(eb.received.iter().any(|r| r.2 == [0, 1] && r.0 > 3));
    }

    #[test]
    fn clean_channel_consumes_no_randomness() {
        // Installing a CLEAN model must leave the trace identical to not
        // touching the channel at all (same RNG stream).
        let run = |install: bool| {
            let (mut w, a, _b, l) = quiet_world();
            w.set_link_loss(l, 0.3);
            if install {
                w.set_channel_model(l, ChannelModel::CLEAN);
            }
            for t in 0..50 {
                w.at(SimTime(t), move |w| {
                    w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, t as u8]));
                });
            }
            w.run_until(SimTime(500));
            let eb: &mut Quiet = w.node_mut(NodeIdx(1));
            std::mem::take(&mut eb.received)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn adversarial_channel_is_deterministic() {
        let run = || {
            let (mut w, a, _b, l) = quiet_world();
            w.set_channel_model(
                l,
                ChannelModel {
                    corrupt_pm: 300,
                    duplicate_pm: 300,
                    reorder_pm: 300,
                    jitter: 40,
                },
            );
            for t in 0..80 {
                w.at(SimTime(t * 3), move |w| {
                    w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, t as u8]));
                });
            }
            w.run_until(SimTime(2000));
            let stats = (
                w.counters().pkts_corrupted(),
                w.counters().pkts_duplicated(),
                w.counters().pkts_reordered(),
            );
            let eb: &mut Quiet = w.node_mut(NodeIdx(1));
            (std::mem::take(&mut eb.received), stats)
        };
        let (recv_a, stats_a) = run();
        let (recv_b, stats_b) = run();
        assert_eq!(recv_a, recv_b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.0 > 0 && stats_a.1 > 0 && stats_a.2 > 0);
    }

    #[test]
    fn decode_failure_accounting() {
        let (mut w, a, _b, _l) = two_node_world();
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                ctx.count_decode_failure(IfaceId(0), "checksum");
                ctx.count_decode_failure(IfaceId(0), "truncated");
            });
        });
        w.run_until(SimTime(10));
        assert_eq!(w.counters().decode_failures(a), 2);
        assert_eq!(w.counters().decode_failures(NodeIdx(1)), 0);
        assert_eq!(w.counters().total_decode_failures(), 2);
    }

    #[test]
    fn crash_and_restart_are_idempotent() {
        let (mut w, _a, b, _l) = two_node_world();
        w.at(SimTime(0), move |w| {
            w.crash_node(b);
            w.crash_node(b); // no-op
        });
        w.at(SimTime(5), move |w| {
            w.restart_node(b);
            w.restart_node(b); // no-op
        });
        w.run_until(SimTime(50));
        assert!(w.is_node_up(b));
    }

    // ---- Capacity-model tests ---------------------------------------

    /// A serialized packet that classifies as [`PacketClass::Data`]
    /// (raw unparseable test bytes classify as Control, which the
    /// priority class would bypass).
    fn data_pkt(len: usize) -> Vec<u8> {
        wire::ip::Header {
            proto: wire::ip::Protocol::Data,
            ttl: 8,
            src: wire::Addr::new(10, 0, 0, 1),
            dst: wire::Addr::new(239, 0, 0, 1),
        }
        .encap(&vec![0u8; len])
    }

    #[test]
    fn capacity_serialization_and_queueing_delay() {
        let (mut w, a, _b, l) = quiet_world();
        w.set_link_capacity(
            l,
            LinkCapacity {
                bytes_per_tick: 1,
                queue_bytes: 10_000,
                ecn_bytes: 0,
                ctrl_priority: true,
            },
        );
        let p1 = data_pkt(4);
        let p2 = data_pkt(4);
        let len = p1.len() as u64;
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                ctx.send(IfaceId(0), p1);
                ctx.send(IfaceId(0), p2);
            });
        });
        w.run_until(SimTime(1000));
        let eb: &Quiet = w.node(NodeIdx(1));
        assert_eq!(eb.received.len(), 2);
        // First packet: backlog = len, so delay 3 + len; second queues
        // behind it: delay 3 + 2*len. FIFO order is preserved.
        assert_eq!(eb.received[0].0, 3 + len);
        assert_eq!(eb.received[1].0, 3 + 2 * len);
        assert_eq!(w.counters().peak_queue_bytes(), 2 * len);
        assert_eq!(w.counters().queue_drops_data(), 0);
    }

    #[test]
    fn capacity_tail_drops_and_marks() {
        let (mut w, a, _b, l) = quiet_world();
        let unit = data_pkt(4).len() as u64;
        // Queue fits exactly two packets; ECN threshold crosses at the
        // second enqueue.
        w.set_link_capacity(
            l,
            LinkCapacity {
                bytes_per_tick: 1,
                queue_bytes: 2 * unit,
                ecn_bytes: unit,
                ctrl_priority: true,
            },
        );
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                for _ in 0..4 {
                    ctx.send(IfaceId(0), data_pkt(4));
                }
            });
        });
        w.run_until(SimTime(1000));
        let eb: &Quiet = w.node(NodeIdx(1));
        assert_eq!(eb.received.len(), 2, "third and fourth tail-dropped");
        let c = w.counters();
        assert_eq!(c.queue_drops_data(), 2);
        assert_eq!(c.queue_drops_ctrl(), 0);
        assert_eq!(c.ecn_marks(), 1, "second enqueue crossed the threshold");
        assert_eq!(c.peak_queue_bytes(), 2 * unit);
        assert_eq!(c.link(l).queue_cap_bytes, 2 * unit);
        // Tail-dropped packets never reached the wire: tx counts only
        // the two delivered packets.
        assert_eq!(c.total_data_pkts(), 2);
    }

    #[test]
    fn capacity_ctrl_priority_bypasses_full_queue() {
        // Raw unparseable bytes classify as Control. With priority on,
        // they sail past a saturated queue; with priority off, they
        // tail-drop like anything else — the starvation configuration.
        let unit = data_pkt(4).len() as u64;
        let run = |prio: bool| {
            let (mut w, a, _b, l) = quiet_world();
            w.set_link_capacity(
                l,
                LinkCapacity {
                    bytes_per_tick: 1,
                    // Exactly one data packet fills the queue.
                    queue_bytes: unit,
                    ecn_bytes: 0,
                    ctrl_priority: prio,
                },
            );
            w.at(SimTime(0), move |w| {
                w.call_node(a, |_n, ctx| {
                    // Saturate with data, then offer one control packet.
                    ctx.send(IfaceId(0), data_pkt(4));
                    ctx.send(IfaceId(0), vec![0xFF; 6]);
                });
            });
            w.run_until(SimTime(1000));
            let got = w.node::<Quiet>(NodeIdx(1)).received.len();
            (got, w.counters().queue_drops_ctrl())
        };
        let (got, starved) = run(true);
        assert_eq!(got, 2, "control bypasses the full queue");
        assert_eq!(starved, 0);
        let (got, starved) = run(false);
        assert_eq!(got, 1, "no priority: control starves behind data");
        assert_eq!(starved, 1);
    }

    #[test]
    fn capacity_disabled_consumes_no_randomness() {
        // Explicitly installing UNLIMITED must leave the trace identical
        // to never touching capacity at all (same RNG stream), exactly
        // like the CLEAN channel contract.
        let run = |install: bool| {
            let (mut w, a, _b, l) = quiet_world();
            w.set_link_loss(l, 0.3);
            if install {
                w.set_link_capacity(l, LinkCapacity::UNLIMITED);
            }
            for t in 0..50 {
                w.at(SimTime(t), move |w| {
                    w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, t as u8]));
                });
            }
            w.run_until(SimTime(500));
            let eb: &mut Quiet = w.node_mut(NodeIdx(1));
            std::mem::take(&mut eb.received)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn capacity_drains_backlog_over_time() {
        let (mut w, a, _b, l) = quiet_world();
        let unit = data_pkt(4).len() as u64;
        w.set_link_capacity(
            l,
            LinkCapacity {
                bytes_per_tick: 2,
                queue_bytes: 2 * unit,
                ecn_bytes: 0,
                ctrl_priority: true,
            },
        );
        // Fill the queue at t=0, then send again after it has fully
        // drained: no drop the second time.
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                ctx.send(IfaceId(0), data_pkt(4));
                ctx.send(IfaceId(0), data_pkt(4));
                ctx.send(IfaceId(0), data_pkt(4)); // dropped: queue full
            });
        });
        let late = SimTime(unit); // 2*unit bytes / 2 per tick = unit ticks
        w.at(late, move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), data_pkt(4)));
        });
        w.run_until(SimTime(1000));
        let eb: &Quiet = w.node(NodeIdx(1));
        assert_eq!(eb.received.len(), 3);
        assert_eq!(w.counters().queue_drops_data(), 1);
    }

    #[test]
    fn set_link_loss_clamps_out_of_range() {
        let (mut w, _a, _b, l) = quiet_world();
        w.set_link_loss(l, 1.5);
        assert_eq!(w.link(l).loss, 1.0);
        w.set_link_loss(l, -0.25);
        assert_eq!(w.link(l).loss, 0.0);
        w.set_link_loss(l, f64::NAN);
        assert_eq!(w.link(l).loss, 0.0);
        w.set_link_loss(l, 0.75);
        assert_eq!(w.link(l).loss, 0.75);
    }

    // ---- Partitioned-core tests -------------------------------------

    /// A sink that renders every event to its JSONL form — the same
    /// bytes `telemetry::JsonlSink` would write, usable as a fingerprint.
    struct VecSink(Vec<String>);

    impl telemetry::Sink for VecSink {
        fn event(&mut self, node: u32, at: u64, ev: &telemetry::Event) {
            self.0.push(ev.to_json(node, at));
        }
    }

    /// Build a 4-node line `n0 -1- n1 -5- n2 -1- n3` (the delay-5 middle
    /// link is the natural cross-region cut), drive cross-link ping-pong
    /// traffic with loss + adversarial channel + a mid-run crash/restart,
    /// and return (receptions, timers, telemetry JSONL, counter totals).
    #[allow(clippy::type_complexity)]
    fn partitioned_fixture(
        partition: Option<&[u32]>,
        threads: Option<usize>,
    ) -> (Vec<Vec<(u64, IfaceId, Vec<u8>)>>, Vec<String>, Vec<u64>) {
        let mut w = World::new(42);
        let nodes: Vec<NodeIdx> = (0..4).map(|_| w.add_node(Box::new(Echo::new()))).collect();
        w.add_p2p(nodes[0], nodes[1], Duration(1));
        let (mid, _, _) = w.add_p2p(nodes[1], nodes[2], Duration(5));
        w.add_p2p(nodes[2], nodes[3], Duration(1));
        if let Some(p) = partition {
            w.set_partition(p);
        }
        if let Some(t) = threads {
            w.parallelize(t);
        }
        w.set_link_loss(mid, 0.2);
        w.set_channel_model(
            mid,
            ChannelModel {
                corrupt_pm: 200,
                duplicate_pm: 200,
                reorder_pm: 200,
                jitter: 7,
            },
        );
        // Capacity on the cross-region link, with priority off so the
        // Echo traffic (raw bytes classify as Control) actually queues:
        // per-direction queue state must be partition-invariant too.
        w.set_link_capacity(
            mid,
            LinkCapacity {
                bytes_per_tick: 2,
                queue_bytes: 24,
                ecn_bytes: 12,
                ctrl_priority: false,
            },
        );
        let sink = Arc::new(Mutex::new(VecSink(Vec::new())));
        w.set_telemetry(sink.clone() as telemetry::SharedSink);
        let (n1, n2) = (nodes[1], nodes[2]);
        for t in 0..30u64 {
            w.at(SimTime(t * 4), move |w| {
                // n1's iface 1 faces the cross-region link to n2.
                w.call_node(n1, |_n, ctx| ctx.send(IfaceId(1), vec![4, t as u8]));
            });
        }
        w.at(SimTime(35), move |w| w.crash_node(n2));
        w.at(SimTime(60), move |w| w.restart_node(n2));
        w.run_until(SimTime(600));
        let receptions = nodes
            .iter()
            .map(|&n| w.node::<Echo>(n).received.clone())
            .collect();
        let jsonl = sink.lock().unwrap().0.clone();
        let c = w.counters();
        let totals = vec![
            c.events_dispatched(),
            c.rx_pkts(),
            c.losses(),
            c.pkts_corrupted(),
            c.pkts_duplicated(),
            c.pkts_reordered(),
            c.pkts_dropped_node_down(),
            c.timers_fired(),
            c.timers_cancelled_node_down(),
            c.queue_drops_data(),
            c.queue_drops_ctrl(),
            c.ecn_marks(),
            c.peak_queue_bytes(),
        ];
        (receptions, jsonl, totals)
    }

    /// The tentpole contract: any region assignment produces byte-identical
    /// receptions, telemetry, and merged counters — including under
    /// impairments and a mid-run crash/restart.
    #[test]
    fn partitioned_run_is_byte_identical_to_single_region() {
        let single = partitioned_fixture(None, None);
        let split = partitioned_fixture(Some(&[0, 0, 1, 1]), None);
        assert_eq!(single.0, split.0, "receptions diverged");
        assert_eq!(single.1, split.1, "telemetry fingerprint diverged");
        assert_eq!(single.2, split.2, "merged counters diverged");
        // A deliberately bad partition (cutting the delay-1 links too)
        // must still agree — correctness never depends on the partition.
        let scattered = partitioned_fixture(Some(&[0, 1, 2, 3]), None);
        assert_eq!(single.0, scattered.0);
        assert_eq!(single.1, scattered.1);
        assert_eq!(single.2, scattered.2);
    }

    /// `parallelize(n)` (auto-partition + scoped threads) is also
    /// byte-identical, and the auto-partitioner cuts at the delay-5 link.
    #[test]
    fn parallelize_auto_partitions_and_matches_single_region() {
        let single = partitioned_fixture(None, None);
        for threads in [2, 4] {
            let par = partitioned_fixture(None, Some(threads));
            assert_eq!(single.0, par.0, "threads={threads}: receptions diverged");
            assert_eq!(single.1, par.1, "threads={threads}: telemetry diverged");
            assert_eq!(single.2, par.2, "threads={threads}: counters diverged");
        }
        // Region-count sanity: the fixture topology splits on the
        // delay-5 middle link into exactly two delay-1 islands.
        let mut w = World::new(7);
        let nodes: Vec<NodeIdx> = (0..4).map(|_| w.add_node(Box::new(Echo::new()))).collect();
        w.add_p2p(nodes[0], nodes[1], Duration(1));
        w.add_p2p(nodes[1], nodes[2], Duration(5));
        w.add_p2p(nodes[2], nodes[3], Duration(1));
        w.parallelize(4);
        assert_eq!(w.region_count(), 2);
        assert_eq!(w.cross_region_lookahead(), Some(Duration(5)));
    }

    /// Captures merge across shards in canonical transmit order.
    #[test]
    fn capture_is_partition_independent() {
        let run = |partition: Option<&[u32]>| {
            let mut w = World::new(9);
            let a = w.add_node(Box::new(Echo::new()));
            let b = w.add_node(Box::new(Echo::new()));
            w.add_p2p(a, b, Duration(2));
            if let Some(p) = partition {
                w.set_partition(p);
            }
            w.enable_capture(16);
            w.at(SimTime(0), move |w| {
                w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![6]));
            });
            w.run_until(SimTime(100));
            w.captured()
                .iter()
                .map(|r| format!("{} {:?} {:?} {}", r.at.ticks(), r.link, r.from, r.summary))
                .collect::<Vec<_>>()
        };
        let single = run(None);
        let split = run(Some(&[0, 1]));
        assert!(!single.is_empty());
        assert_eq!(single, split);
    }
}
