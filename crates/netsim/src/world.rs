//! The discrete-event simulation world: nodes, links, the event queue, and
//! the driver loop.
//!
//! The simulator is deliberately simple (smoltcp-style "simplicity and
//! robustness"): links have a fixed propagation delay and optional random
//! loss, nodes are trait objects that react to packets and timers, and all
//! randomness flows from a single seeded RNG so every run is reproducible.
//! There is no bandwidth/queueing model — the paper's evaluation counts
//! state, control messages, and data-packet processing, none of which
//! depend on queueing.

use crate::counters::{Counters, PacketClass};
use crate::time::{Duration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::any::Any;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Index of a node in the world.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeIdx(pub usize);

impl fmt::Debug for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A node-local interface index: position in the node's own interface list.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfaceId(pub u32);

impl IfaceId {
    /// As a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

impl fmt::Display for IfaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "if{}", self.0)
    }
}

/// Index of a link in the world.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// Whether a link is a point-to-point wire or a multi-access LAN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkKind {
    /// Exactly two attachments; a send by one is delivered to the other.
    PointToPoint,
    /// Any number of attachments; a send by one is delivered to all others
    /// (needed for the paper's §3.7 multi-access subnetwork behaviors:
    /// prune override, join suppression, DR election).
    Lan,
}

/// Per-link adversarial impairments, applied independently per receiver
/// copy at transmit time from the world's single seeded RNG — a real
/// wide-area fabric does not just drop packets, it also corrupts,
/// duplicates, and reorders them (the regime where the paper's §2
/// soft-state robustness claim must hold).
///
/// Probabilities are integer per-mille (`0..=1000`), never floats, so
/// scenario schedules carrying them round-trip exactly through text.
/// The default (all zeros) is a clean channel that consumes no
/// randomness, leaving pre-existing traces byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelModel {
    /// Per-mille probability that a delivered copy has one byte flipped.
    pub corrupt_pm: u32,
    /// Per-mille probability that a receiver gets the packet twice.
    pub duplicate_pm: u32,
    /// Per-mille probability that a copy is delayed past later traffic.
    pub reorder_pm: u32,
    /// Maximum extra delay (in ticks) added to a reordered copy; the
    /// actual extra delay is drawn uniformly from `1..=jitter.max(1)`.
    pub jitter: u64,
}

impl ChannelModel {
    /// A clean channel: no corruption, duplication, or reordering.
    pub const CLEAN: ChannelModel = ChannelModel {
        corrupt_pm: 0,
        duplicate_pm: 0,
        reorder_pm: 0,
        jitter: 0,
    };

    /// True when every impairment probability is zero (the transmit path
    /// then consumes no randomness for this model).
    pub fn is_clean(&self) -> bool {
        self.corrupt_pm == 0 && self.duplicate_pm == 0 && self.reorder_pm == 0
    }
}

/// A link connecting node interfaces.
#[derive(Debug)]
pub struct Link {
    /// Point-to-point or LAN.
    pub kind: LinkKind,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Administratively/physically up?
    pub up: bool,
    /// Per-receiver independent drop probability (failure injection).
    pub loss: f64,
    /// Adversarial impairments (corrupt/duplicate/reorder).
    pub channel: ChannelModel,
    /// The attached `(node, iface)` pairs.
    pub attachments: Vec<(NodeIdx, IfaceId)>,
}

/// A simulated node. Implementations wrap sans-IO protocol engines and
/// translate their outputs into [`Ctx`] calls.
pub trait Node {
    /// Called once when the simulation starts, before any packets flow.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// A packet arrived on `iface`. `packet` is the full serialized buffer
    /// (network header included).
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]);

    /// A timer set via [`Ctx::set_timer`]/[`Ctx::set_timer_at`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);

    /// The node crashed with total state loss ([`World::crash_node`]).
    /// Implementations drop all volatile protocol state; static
    /// configuration (addresses, interface roles) survives, modelling a
    /// router whose config is in NVRAM but whose RAM is gone. No [`Ctx`] is
    /// provided — a dead node cannot send or arm timers.
    fn on_crash(&mut self) {}

    /// The node powered back up after a crash ([`World::restart_node`]).
    /// Default: cold-boot via [`Node::on_start`].
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.on_start(ctx);
    }

    /// Downcast support for post-run inspection.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcast support for scenario scripting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

enum Event {
    Deliver {
        node: NodeIdx,
        iface: IfaceId,
        /// Shared, immutable payload: a LAN transmit enqueues one
        /// delivery per attached receiver, and the `Arc` makes each a
        /// refcount bump on the single serialized buffer instead of a
        /// per-receiver copy. Receivers only ever see `&[u8]`
        /// ([`Node::on_packet`]), so immutability is free.
        packet: Arc<[u8]>,
        link: LinkId,
    },
    Timer {
        node: NodeIdx,
        token: u64,
    },
    Script(Box<dyn FnOnce(&mut World)>),
}

/// Handle to a scheduled timer, usable with [`Ctx::cancel_timer`].
///
/// Generation-counted: event slots are recycled once an event fires or is
/// cancelled, and the generation disambiguates a handle from any later
/// tenant of the same slot, so cancelling an already-fired timer is a safe
/// no-op rather than an ABA hazard.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId {
    slot: usize,
    gen: u32,
}

/// One event-arena slot. The heap stores `(time, seq, slot, gen)`; a popped
/// entry whose generation no longer matches (or whose slot is empty) is a
/// cancelled timer and is skipped without dispatch.
struct EventSlot {
    gen: u32,
    ev: Option<Event>,
}

/// Everything the world owns *except* the nodes, so a node callback can
/// borrow the node mutably alongside the rest of the world.
struct Fabric {
    now: SimTime,
    links: Vec<Link>,
    /// ifaces[node.0][iface.0] = link the interface attaches to.
    ifaces: Vec<Vec<LinkId>>,
    /// node_up[node.0]: false while the node is crashed. Down nodes get no
    /// deliveries and no timer callbacks.
    node_up: Vec<bool>,
    queue: BinaryHeap<Reverse<(SimTime, u64, usize, u32)>>,
    /// Event arena, indexed by the slot carried in the heap. Slots are
    /// vacated (and recycled via `free`) as events fire or are cancelled,
    /// so memory is bounded by *outstanding* events, not events ever
    /// scheduled.
    events: Vec<EventSlot>,
    /// Vacated arena slots available for reuse.
    free: Vec<usize>,
    seq: u64,
    rng: StdRng,
    counters: Counters,
    /// Packet capture: `Some((limit, ring))` when enabled.
    capture: Option<(usize, Vec<CaptureRecord>)>,
    /// Structured-event sink for the world's own events (timer arm /
    /// fire / cancel, injected faults). `None` = telemetry disabled;
    /// the only cost on the hot path is this branch.
    telem: Option<Rc<RefCell<dyn telemetry::Sink>>>,
}

/// One captured transmission (see [`World::enable_capture`]).
#[derive(Clone, Debug)]
pub struct CaptureRecord {
    /// Transmission time.
    pub at: SimTime,
    /// The link transmitted on.
    pub link: LinkId,
    /// The transmitting node.
    pub from: NodeIdx,
    /// Human-readable decode of the packet (see [`crate::trace`]).
    pub summary: String,
}

impl Fabric {
    /// Emit a structured telemetry event on behalf of `node`. The
    /// closure runs only when a sink is attached, so the disabled path
    /// never constructs (or allocates for) the event.
    #[inline]
    fn emit(&self, node: NodeIdx, f: impl FnOnce() -> telemetry::Event) {
        if let Some(sink) = &self.telem {
            let ev = f();
            sink.borrow_mut()
                .event(node.0 as u32, self.now.ticks(), &ev);
        }
    }

    fn push_event(&mut self, at: SimTime, ev: Event) -> TimerId {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.events[slot].ev = Some(ev);
                slot
            }
            None => {
                self.events.push(EventSlot {
                    gen: 0,
                    ev: Some(ev),
                });
                self.events.len() - 1
            }
        };
        let gen = self.events[slot].gen;
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, slot, gen)));
        TimerId { slot, gen }
    }

    /// Vacate a slot after its event fired or was cancelled: bump the
    /// generation (so outstanding handles and heap entries for this tenant
    /// go stale) and recycle the index.
    fn vacate(&mut self, slot: usize) -> Event {
        let s = &mut self.events[slot];
        let ev = s.ev.take().expect("vacating an empty event slot");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        ev
    }

    /// Transmit `packet` out of `(node, iface)`: schedule deliveries to all
    /// other attachments of the link after its propagation delay, applying
    /// the link's loss probability independently per receiver.
    fn transmit(&mut self, from: NodeIdx, iface: IfaceId, packet: Vec<u8>) {
        let link_id = self.ifaces[from.0][iface.index()];
        let link = &self.links[link_id.0];
        if !link.up {
            return;
        }
        let (class, proto) = PacketClass::classify_full(&packet);
        self.counters
            .record_tx(link_id, class, proto, packet.len(), self.now);
        if let Some((limit, ring)) = &mut self.capture {
            if ring.len() < *limit {
                ring.push(CaptureRecord {
                    at: self.now,
                    link: link_id,
                    from,
                    summary: crate::trace::describe_packet(&packet),
                });
            }
        }
        let delay = link.delay;
        let dests: Vec<(NodeIdx, IfaceId)> = link
            .attachments
            .iter()
            .copied()
            .filter(|&(n, i)| (n, i) != (from, iface))
            .collect();
        let loss = link.loss;
        let chan = link.channel;
        let at = self.now + delay;
        // One shared buffer for the whole fan-out; each delivery below is
        // a refcount bump, not a copy of the packet bytes.
        let packet: Arc<[u8]> = packet.into();
        for (n, i) in dests {
            if !self.node_up[n.0] {
                self.counters.record_pkt_dropped_node_down();
                continue;
            }
            if loss > 0.0 && self.rng.gen::<f64>() < loss {
                self.counters.record_loss(link_id);
                continue;
            }
            // Adversarial channel: per-receiver rolls in a fixed order
            // (duplicate, then corrupt and reorder per copy) so traces are
            // a pure function of the seed. Each roll happens only when its
            // probability is nonzero — a clean channel consumes no
            // randomness and pre-existing traces stay byte-identical.
            let copies = if chan.duplicate_pm > 0 && self.rng.gen_range(0..1000) < chan.duplicate_pm
            {
                self.counters.record_duplicated(link_id);
                self.emit(n, || telemetry::Event::ChannelImpaired {
                    what: "duplicate",
                    link: link_id.0 as u32,
                });
                2
            } else {
                1
            };
            for _ in 0..copies {
                let mut copy = packet.clone();
                let mut due = at;
                if chan.corrupt_pm > 0 && self.rng.gen_range(0..1000) < chan.corrupt_pm {
                    // Flip one random bit of one random byte. The shared
                    // Arc must never be mutated (other receivers see the
                    // same buffer), so the corrupted copy gets its own
                    // private allocation.
                    let mut bytes = copy.to_vec();
                    if !bytes.is_empty() {
                        let idx = self.rng.gen_range(0..bytes.len());
                        let bit = 1u8 << self.rng.gen_range(0..8u32);
                        bytes[idx] ^= bit;
                    }
                    copy = bytes.into();
                    self.counters.record_corrupted(link_id);
                    self.emit(n, || telemetry::Event::ChannelImpaired {
                        what: "corrupt",
                        link: link_id.0 as u32,
                    });
                }
                if chan.reorder_pm > 0 && self.rng.gen_range(0..1000) < chan.reorder_pm {
                    due += Duration(self.rng.gen_range(1..=chan.jitter.max(1)));
                    self.counters.record_reordered(link_id);
                    self.emit(n, || telemetry::Event::ChannelImpaired {
                        what: "reorder",
                        link: link_id.0 as u32,
                    });
                }
                self.push_event(
                    due,
                    Event::Deliver {
                        node: n,
                        iface: i,
                        packet: copy,
                        link: link_id,
                    },
                );
            }
        }
    }
}

/// The per-callback view of the world handed to [`Node`] implementations.
pub struct Ctx<'a> {
    fabric: &'a mut Fabric,
    node: NodeIdx,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.fabric.now
    }

    /// The index of the node being called.
    pub fn me(&self) -> NodeIdx {
        self.node
    }

    /// Number of interfaces this node has.
    pub fn iface_count(&self) -> usize {
        self.fabric.ifaces[self.node.0].len()
    }

    /// Transmit a serialized packet out of `iface`.
    pub fn send(&mut self, iface: IfaceId, packet: Vec<u8>) {
        debug_assert!(
            iface.index() < self.iface_count(),
            "send on nonexistent interface {iface:?}"
        );
        self.fabric.transmit(self.node, iface, packet);
    }

    /// Arrange for [`Node::on_timer`] to be called with `token` after `d`.
    pub fn set_timer(&mut self, d: Duration, token: u64) -> TimerId {
        self.set_timer_at(self.fabric.now + d, token)
    }

    /// Arrange for [`Node::on_timer`] to be called with `token` at absolute
    /// time `at` (clamped to now: a past deadline fires this instant, after
    /// the current event). Returns a handle for [`Ctx::cancel_timer`].
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) -> TimerId {
        let at = at.max(self.fabric.now);
        self.fabric
            .emit(self.node, || telemetry::Event::TimerArmed {
                token,
                deadline: at.ticks(),
            });
        self.fabric.push_event(
            at,
            Event::Timer {
                node: self.node,
                token,
            },
        )
    }

    /// Cancel a pending timer. Returns `true` if the timer was still
    /// pending and belonged to this node; stale handles (the timer already
    /// fired, was cancelled, or the slot was recycled) are a no-op. The
    /// heap entry stays behind and is skipped — and counted as stale — when
    /// popped.
    pub fn cancel_timer(&mut self, id: TimerId) -> bool {
        let Some(s) = self.fabric.events.get(id.slot) else {
            return false;
        };
        if s.gen != id.gen {
            return false;
        }
        match s.ev {
            Some(Event::Timer { node, token }) if node == self.node => {
                self.fabric.vacate(id.slot);
                self.fabric
                    .emit(self.node, || telemetry::Event::TimerCancelled { token });
                true
            }
            _ => false,
        }
    }

    /// Seeded randomness for protocol jitter (e.g. IGMP report delays).
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.fabric.rng
    }

    /// Is the link behind `iface` currently up?
    pub fn iface_up(&self, iface: IfaceId) -> bool {
        let link = self.fabric.ifaces[self.node.0][iface.index()];
        self.fabric.links[link.0].up
    }

    /// Record that a data packet was delivered to a locally attached group
    /// member (for the experiment counters).
    pub fn count_local_delivery(&mut self) {
        self.fabric.counters.record_local_delivery(self.node);
    }

    /// Record that a received payload failed to decode and was dropped
    /// (see [`crate::Counters::total_decode_failures`]), emitting one
    /// telemetry [`telemetry::Event::DecodeFailed`] mark.
    pub fn count_decode_failure(&mut self, iface: IfaceId, kind: &'static str) {
        self.fabric.counters.record_decode_failure(self.node);
        self.fabric
            .emit(self.node, || telemetry::Event::DecodeFailed {
                kind,
                iface: iface.0,
            });
    }
}

/// The simulation world.
pub struct World {
    nodes: Vec<Option<Box<dyn Node>>>,
    fabric: Fabric,
    started: bool,
}

impl Default for World {
    fn default() -> Self {
        Self::new(0)
    }
}

impl World {
    /// Create an empty world whose RNG is seeded with `seed`.
    pub fn new(seed: u64) -> World {
        World {
            nodes: Vec::new(),
            fabric: Fabric {
                now: SimTime::ZERO,
                links: Vec::new(),
                ifaces: Vec::new(),
                queue: BinaryHeap::new(),
                node_up: Vec::new(),
                events: Vec::new(),
                free: Vec::new(),
                seq: 0,
                rng: StdRng::seed_from_u64(seed),
                counters: Counters::default(),
                capture: None,
                telem: None,
            },
            started: false,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.fabric.now
    }

    /// Add a node; returns its index.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeIdx {
        assert!(!self.started, "cannot add nodes after start");
        self.nodes.push(Some(node));
        self.fabric.ifaces.push(Vec::new());
        self.fabric.node_up.push(true);
        NodeIdx(self.nodes.len() - 1)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn attach(&mut self, node: NodeIdx, link: LinkId) -> IfaceId {
        let ifaces = &mut self.fabric.ifaces[node.0];
        ifaces.push(link);
        let iface = IfaceId(ifaces.len() as u32 - 1);
        self.fabric.links[link.0].attachments.push((node, iface));
        iface
    }

    /// Add a point-to-point link; returns `(link, iface at a, iface at b)`.
    pub fn add_p2p(
        &mut self,
        a: NodeIdx,
        b: NodeIdx,
        delay: Duration,
    ) -> (LinkId, IfaceId, IfaceId) {
        assert_ne!(a, b, "p2p link endpoints must differ");
        let id = LinkId(self.fabric.links.len());
        self.fabric.links.push(Link {
            kind: LinkKind::PointToPoint,
            delay,
            up: true,
            loss: 0.0,
            channel: ChannelModel::CLEAN,
            attachments: Vec::new(),
        });
        let ia = self.attach(a, id);
        let ib = self.attach(b, id);
        (id, ia, ib)
    }

    /// Add a multi-access LAN joining `nodes`; returns the link id and each
    /// node's new interface, in order.
    pub fn add_lan(&mut self, nodes: &[NodeIdx], delay: Duration) -> (LinkId, Vec<IfaceId>) {
        assert!(nodes.len() >= 2, "a LAN needs at least two attachments");
        let id = LinkId(self.fabric.links.len());
        self.fabric.links.push(Link {
            kind: LinkKind::Lan,
            delay,
            up: true,
            loss: 0.0,
            channel: ChannelModel::CLEAN,
            attachments: Vec::new(),
        });
        let ifaces = nodes.iter().map(|&n| self.attach(n, id)).collect();
        (id, ifaces)
    }

    /// Crash `node` with total state loss (§2 robustness: routers "may
    /// fail"). The node's volatile protocol state is dropped via
    /// [`Node::on_crash`], every timer it has armed is cancelled (counted
    /// in [`Counters::timers_cancelled_node_down`]) so no stale wakeup
    /// fires against the corpse, and packets addressed to it are discarded
    /// until [`World::restart_node`]. No-op if the node is already down.
    pub fn crash_node(&mut self, idx: NodeIdx) {
        if !self.fabric.node_up[idx.0] {
            return;
        }
        self.fabric.node_up[idx.0] = false;
        // Eagerly vacate every armed timer owned by the node. The heap
        // entries stay behind and are skipped as stale when popped; what
        // matters is that no Timer event can reach a dead node.
        let doomed: Vec<usize> = self
            .fabric
            .events
            .iter()
            .enumerate()
            .filter_map(|(slot, s)| match s.ev {
                Some(Event::Timer { node, .. }) if node == idx => Some(slot),
                _ => None,
            })
            .collect();
        for slot in doomed {
            self.fabric.vacate(slot);
            self.fabric.counters.record_timer_cancelled_node_down();
        }
        if let Some(node) = self.nodes[idx.0].as_mut() {
            node.on_crash();
        }
    }

    /// Power a crashed node back up: it cold-boots via
    /// [`Node::on_restart`] with whatever static configuration survived
    /// [`Node::on_crash`]. No-op if the node is already up.
    pub fn restart_node(&mut self, idx: NodeIdx) {
        if self.fabric.node_up[idx.0] {
            return;
        }
        self.fabric.node_up[idx.0] = true;
        self.with_node(idx, |n, ctx| n.on_restart(ctx));
    }

    /// Is `node` currently up (not crashed)?
    pub fn is_node_up(&self, idx: NodeIdx) -> bool {
        self.fabric.node_up[idx.0]
    }

    /// Take a link up or down (topology-change injection).
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.fabric.links[link.0].up = up;
    }

    /// Set a link's independent per-receiver drop probability.
    pub fn set_link_loss(&mut self, link: LinkId, loss: f64) {
        assert!((0.0..=1.0).contains(&loss));
        self.fabric.links[link.0].loss = loss;
    }

    /// Install an adversarial [`ChannelModel`] on a link (corruption,
    /// duplication, reordering). `ChannelModel::CLEAN` restores a clean
    /// channel.
    pub fn set_channel_model(&mut self, link: LinkId, channel: ChannelModel) {
        assert!(channel.corrupt_pm <= 1000, "corrupt_pm is per-mille");
        assert!(channel.duplicate_pm <= 1000, "duplicate_pm is per-mille");
        assert!(channel.reorder_pm <= 1000, "reorder_pm is per-mille");
        self.fabric.links[link.0].channel = channel;
    }

    /// Link metadata.
    pub fn link(&self, link: LinkId) -> &Link {
        &self.fabric.links[link.0]
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.fabric.links.len()
    }

    /// Overhead counters collected so far.
    pub fn counters(&self) -> &Counters {
        &self.fabric.counters
    }

    /// Reset the overhead counters (e.g. after protocol warm-up, so an
    /// experiment measures steady state only).
    pub fn reset_counters(&mut self) {
        self.fabric.counters = Counters::default();
    }

    /// Attach a structured-event sink for the world's own telemetry
    /// (timer arm / fire / cancel, injected fault markers). Node
    /// adapters attach their own per-node handles separately (see the
    /// `telemetry` crate). Telemetry only observes: it consumes no
    /// randomness and takes no behavioral branches, so packet traces
    /// are identical with or without a sink.
    pub fn set_telemetry(&mut self, sink: Rc<RefCell<dyn telemetry::Sink>>) {
        self.fabric.telem = Some(sink);
    }

    /// Emit one telemetry event on behalf of `node` (no-op when no sink
    /// is attached). Scenario scripts use this to mark injected faults
    /// so sinks can measure post-fault reconvergence.
    pub fn emit_event(&mut self, node: NodeIdx, ev: telemetry::Event) {
        self.fabric.emit(node, || ev);
    }

    /// Start capturing packet transmissions — the simulator's `tcpdump`.
    /// Records up to `limit` packets (time, link, sender, human-readable
    /// decode) from now on; calling again clears the buffer.
    pub fn enable_capture(&mut self, limit: usize) {
        self.fabric.capture = Some((limit, Vec::new()));
    }

    /// The packets captured so far (empty if capture was never enabled).
    pub fn captured(&self) -> &[CaptureRecord] {
        self.fabric
            .capture
            .as_ref()
            .map(|(_, ring)| ring.as_slice())
            .unwrap_or(&[])
    }

    /// Schedule an arbitrary scripted action (host joins a group, link
    /// fails, ...) at absolute time `at`.
    pub fn at(&mut self, at: SimTime, f: impl FnOnce(&mut World) + 'static) {
        assert!(at >= self.fabric.now, "cannot schedule in the past");
        let _ = self.fabric.push_event(at, Event::Script(Box::new(f)));
    }

    /// Immutable access to a node, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the node is of a different type (a test bug, not a runtime
    /// condition).
    pub fn node<T: 'static>(&self, idx: NodeIdx) -> &T {
        self.nodes[idx.0]
            .as_ref()
            .expect("node is not mid-callback")
            .as_any()
            .downcast_ref()
            .expect("node type mismatch")
    }

    /// Mutable access to a node, downcast to its concrete type.
    pub fn node_mut<T: 'static>(&mut self, idx: NodeIdx) -> &mut T {
        self.nodes[idx.0]
            .as_mut()
            .expect("node is not mid-callback")
            .as_any_mut()
            .downcast_mut()
            .expect("node type mismatch")
    }

    /// Run a node callback through the take-call-put dance that lets the
    /// node borrow the fabric mutably alongside itself.
    fn with_node(&mut self, idx: NodeIdx, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>)) {
        let mut node = self.nodes[idx.0].take().expect("node re-entrancy");
        {
            let mut ctx = Ctx {
                fabric: &mut self.fabric,
                node: idx,
            };
            f(node.as_mut(), &mut ctx);
        }
        self.nodes[idx.0] = Some(node);
    }

    /// Invoke a node's [`Node::on_timer`]-style entry from scripted events,
    /// giving scenario code a way to poke engines with full context.
    pub fn call_node(&mut self, idx: NodeIdx, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>)) {
        self.with_node(idx, f);
    }

    /// Deliver `on_start` to every node (idempotent; called automatically by
    /// the run methods).
    pub fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.with_node(NodeIdx(i), |n, ctx| n.on_start(ctx));
        }
    }

    fn step(&mut self) -> bool {
        let Some(Reverse((at, _seq, slot, gen))) = self.fabric.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.fabric.now, "time went backwards");
        self.fabric.now = at;
        // A generation mismatch or empty slot means the event was cancelled
        // (or the slot recycled after cancellation): skip without dispatch.
        if self.fabric.events[slot].gen != gen || self.fabric.events[slot].ev.is_none() {
            self.fabric.counters.record_timer_skipped();
            return true;
        }
        let ev = self.fabric.vacate(slot);
        self.fabric.counters.record_dispatch();
        match ev {
            Event::Deliver {
                node,
                iface,
                packet,
                link,
            } => {
                // In-flight packets to a node that crashed after transmit
                // are discarded at its dead NIC.
                if !self.fabric.node_up[node.0] {
                    self.fabric.counters.record_pkt_dropped_node_down();
                    return true;
                }
                let class = PacketClass::classify(&packet);
                self.fabric.counters.record_rx(link, class, packet.len());
                self.with_node(node, |n, ctx| n.on_packet(ctx, iface, &packet));
            }
            Event::Timer { node, token } => {
                // Belt-and-braces: crash_node cancels the node's timers
                // eagerly, but a script could still arm one against a down
                // node via call_node.
                if !self.fabric.node_up[node.0] {
                    self.fabric.counters.record_timer_cancelled_node_down();
                    return true;
                }
                self.fabric.counters.record_timer_fired();
                self.fabric
                    .emit(node, || telemetry::Event::TimerFired { token });
                self.with_node(node, |n, ctx| n.on_timer(ctx, token));
            }
            Event::Script(f) => f(self),
        }
        true
    }

    /// Run until the event queue is empty or simulated time would exceed
    /// `until`. Returns the number of events processed.
    pub fn run_until(&mut self, until: SimTime) -> usize {
        self.start();
        let mut n = 0;
        while let Some(&Reverse((at, _, _, _))) = self.fabric.queue.peek() {
            if at > until {
                break;
            }
            self.step();
            n += 1;
        }
        // Advance the clock to the requested horizon even if idle.
        if self.fabric.now < until {
            self.fabric.now = until;
        }
        n
    }

    /// Run until the queue drains completely (only sensible when no node
    /// sets periodic timers), or until `max_events` as a runaway guard.
    pub fn run_to_idle(&mut self, max_events: usize) -> usize {
        self.start();
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test node that echoes every packet back out the interface it came
    /// in on, decrementing the first byte as a TTL; records deliveries.
    struct Echo {
        received: Vec<(u64, IfaceId, Vec<u8>)>,
        timers: Vec<(u64, u64)>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                received: Vec::new(),
                timers: Vec::new(),
            }
        }
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
            self.received
                .push((ctx.now().ticks(), iface, packet.to_vec()));
            if let Some((&ttl, rest)) = packet.split_first() {
                if ttl > 0 {
                    let mut next = vec![ttl - 1];
                    next.extend_from_slice(rest);
                    ctx.send(iface, next);
                }
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.timers.push((ctx.now().ticks(), token));
        }

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Records deliveries and nothing else — no retransmission. The
    /// channel-model tests need this: corruption can flip a bit in the
    /// byte [`Echo`] treats as a TTL, and an echoing receiver would then
    /// amplify duplicated copies into an unbounded packet storm.
    #[derive(Default)]
    struct Quiet {
        received: Vec<(u64, IfaceId, Vec<u8>)>,
    }

    impl Node for Quiet {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, iface: IfaceId, packet: &[u8]) {
            self.received
                .push((ctx.now().ticks(), iface, packet.to_vec()));
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

        fn as_any(&self) -> &dyn Any {
            self
        }

        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn quiet_world() -> (World, NodeIdx, NodeIdx, LinkId) {
        let mut w = World::new(1);
        let a = w.add_node(Box::<Quiet>::default());
        let b = w.add_node(Box::<Quiet>::default());
        let (l, _, _) = w.add_p2p(a, b, Duration(3));
        (w, a, b, l)
    }

    fn two_node_world() -> (World, NodeIdx, NodeIdx, LinkId) {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        let b = w.add_node(Box::new(Echo::new()));
        let (l, _, _) = w.add_p2p(a, b, Duration(3));
        (w, a, b, l)
    }

    #[test]
    fn p2p_delivery_with_delay() {
        let (mut w, a, b, _) = two_node_world();
        w.at(SimTime(10), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 42]));
        });
        w.run_until(SimTime(100));
        let eb: &Echo = w.node(b);
        assert_eq!(eb.received.len(), 1);
        assert_eq!(eb.received[0].0, 13); // 10 + delay 3
        assert_eq!(eb.received[0].2, vec![0, 42]);
        // TTL 0: no echo back.
        let ea: &Echo = w.node(a);
        assert!(ea.received.is_empty());
    }

    #[test]
    fn ping_pong_until_ttl_exhausted() {
        let (mut w, a, b, _) = two_node_world();
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![5]));
        });
        w.run_until(SimTime(1000));
        let ea: &Echo = w.node(a);
        let eb: &Echo = w.node(b);
        // b receives ttl=5,3,1; a receives ttl=4,2,0.
        assert_eq!(eb.received.len(), 3);
        assert_eq!(ea.received.len(), 3);
        assert_eq!(ea.received.last().unwrap().2, vec![0]);
    }

    #[test]
    fn lan_broadcast_excludes_sender() {
        let mut w = World::new(1);
        let nodes: Vec<NodeIdx> = (0..4).map(|_| w.add_node(Box::new(Echo::new()))).collect();
        let (_, _ifaces) = w.add_lan(&nodes, Duration(1));
        let sender = nodes[2];
        w.at(SimTime(0), move |w| {
            w.call_node(sender, |_n, ctx| ctx.send(IfaceId(0), vec![0, 7]));
        });
        w.run_until(SimTime(10));
        for (i, &n) in nodes.iter().enumerate() {
            let e: &Echo = w.node(n);
            if n == sender {
                assert!(e.received.is_empty(), "sender must not hear itself");
            } else {
                assert_eq!(e.received.len(), 1, "node {i} missed the broadcast");
                assert_eq!(e.received[0].0, 1);
            }
        }
    }

    /// The LAN fan-out shares one `Arc` buffer across all receivers:
    /// every receiver must see the exact payload bytes, and a receiver
    /// re-sending a mutated copy (Echo decrements the TTL byte) must not
    /// disturb what the others saw.
    #[test]
    fn lan_fanout_delivers_identical_payload_bytes() {
        let mut w = World::new(1);
        let nodes: Vec<NodeIdx> = (0..4).map(|_| w.add_node(Box::new(Echo::new()))).collect();
        w.add_lan(&nodes, Duration(1));
        let sender = nodes[0];
        let payload = vec![1, 0xAB, 0xCD, 0xEF];
        let sent = payload.clone();
        w.at(SimTime(0), move |w| {
            w.call_node(sender, |_n, ctx| ctx.send(IfaceId(0), sent));
        });
        w.run_until(SimTime(10));
        for &n in &nodes[1..] {
            let e: &Echo = w.node(n);
            assert_eq!(e.received.len(), 3, "broadcast + two peer echoes");
            assert_eq!(e.received[0].2, payload, "original payload corrupted");
            // The peers' echoes arrive with the TTL byte decremented —
            // their mutation happened on private buffers.
            assert_eq!(e.received[1].2, vec![0, 0xAB, 0xCD, 0xEF]);
            assert_eq!(e.received[2].2, vec![0, 0xAB, 0xCD, 0xEF]);
        }
        let es: &Echo = w.node(sender);
        assert_eq!(es.received.len(), 3, "one echo per receiver");
        assert!(es.received.iter().all(|r| r.2 == [0, 0xAB, 0xCD, 0xEF]));
    }

    #[test]
    fn timers_fire_in_order() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                ctx.set_timer(Duration(10), 1);
                ctx.set_timer(Duration(5), 2);
                ctx.set_timer(Duration(10), 3); // same time as token 1: FIFO
            });
        });
        w.run_until(SimTime(100));
        let e: &Echo = w.node(a);
        assert_eq!(e.timers, vec![(5, 2), (10, 1), (10, 3)]);
    }

    #[test]
    fn cancelled_timer_is_skipped_and_counted_stale() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                let t1 = ctx.set_timer(Duration(10), 1);
                ctx.set_timer_at(SimTime(5), 2);
                assert!(ctx.cancel_timer(t1));
                assert!(!ctx.cancel_timer(t1), "double cancel must be a no-op");
            });
        });
        w.run_until(SimTime(100));
        let e: &Echo = w.node(a);
        assert_eq!(e.timers, vec![(5, 2)]);
        assert_eq!(w.counters().timers_fired(), 1);
        assert_eq!(w.counters().timers_skipped_stale(), 1);
    }

    #[test]
    fn stale_handle_cannot_cancel_recycled_slot() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                let t1 = ctx.set_timer(Duration(10), 1);
                assert!(ctx.cancel_timer(t1));
                // This reuses t1's arena slot under a new generation.
                ctx.set_timer(Duration(20), 2);
                assert!(
                    !ctx.cancel_timer(t1),
                    "generation must protect the slot's new tenant"
                );
            });
        });
        w.run_until(SimTime(100));
        let e: &Echo = w.node(a);
        assert_eq!(e.timers, vec![(20, 2)]);
    }

    #[test]
    fn set_timer_at_past_deadline_fires_now() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        w.at(SimTime(7), move |w| {
            w.call_node(a, |_n, ctx| {
                ctx.set_timer_at(SimTime(3), 9); // already past: clamped to now
            });
        });
        w.run_until(SimTime(100));
        let e: &Echo = w.node(a);
        assert_eq!(e.timers, vec![(7, 9)]);
    }

    #[test]
    fn event_dispatch_counters() {
        let (mut w, a, _b, _l) = two_node_world();
        w.at(SimTime(10), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 42]));
        });
        w.run_until(SimTime(100));
        // One script + one delivery dispatched; no timers anywhere.
        assert_eq!(w.counters().events_dispatched(), 2);
        assert_eq!(w.counters().timers_fired(), 0);
        assert_eq!(w.counters().timers_skipped_stale(), 0);
        assert_eq!(w.counters().rx_pkts(), 1);
    }

    #[test]
    fn downed_link_drops_traffic() {
        let (mut w, a, b, l) = two_node_world();
        w.at(SimTime(0), move |w| w.set_link_up(l, false));
        w.at(SimTime(1), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![3]));
        });
        w.run_until(SimTime(50));
        let eb: &Echo = w.node(b);
        assert!(eb.received.is_empty());
    }

    #[test]
    fn lossy_link_drops_some() {
        let (mut w, a, _b, l) = two_node_world();
        w.set_link_loss(l, 0.5);
        for t in 0..200 {
            w.at(SimTime(t), move |w| {
                w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0]));
            });
        }
        w.run_until(SimTime(1000));
        let eb: &Echo = w.node(NodeIdx(1));
        assert!(
            eb.received.len() > 50,
            "lost too many: {}",
            eb.received.len()
        );
        assert!(
            eb.received.len() < 150,
            "lost too few: {}",
            eb.received.len()
        );
        assert!(w.counters().losses() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let (mut w, a, _b, l) = two_node_world();
            w.set_link_loss(l, 0.3);
            for t in 0..50 {
                w.at(SimTime(t), move |w| {
                    w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, t as u8]));
                });
            }
            w.run_until(SimTime(500));
            // Drain rather than clone: the world is dropped right after,
            // so the copy was pure waste.
            let eb: &mut Echo = w.node_mut(NodeIdx(1));
            std::mem::take(&mut eb.received)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clock_advances_to_horizon_when_idle() {
        let (mut w, _a, _b, _l) = two_node_world();
        w.run_until(SimTime(123));
        assert_eq!(w.now(), SimTime(123));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_rejected() {
        let (mut w, _a, _b, _l) = two_node_world();
        w.run_until(SimTime(10));
        w.at(SimTime(5), |_| {});
    }

    #[test]
    fn crash_cancels_armed_timers() {
        let mut w = World::new(1);
        let a = w.add_node(Box::new(Echo::new()));
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                ctx.set_timer(Duration(10), 1);
                ctx.set_timer(Duration(20), 2);
            });
        });
        w.at(SimTime(5), move |w| w.crash_node(a));
        w.run_until(SimTime(100));
        let e: &Echo = w.node(a);
        assert!(e.timers.is_empty(), "no timer may fire on a dead node");
        assert_eq!(w.counters().timers_cancelled_node_down(), 2);
        assert_eq!(w.counters().timers_fired(), 0);
        assert!(!w.is_node_up(a));
    }

    #[test]
    fn down_node_drops_deliveries_and_restart_revives() {
        let (mut w, a, b, _l) = two_node_world();
        w.at(SimTime(0), move |w| w.crash_node(b));
        // Transmitted while b is down: dropped at the dead attachment.
        w.at(SimTime(1), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 1]));
        });
        w.at(SimTime(10), move |w| w.restart_node(b));
        // Transmitted after restart: delivered normally.
        w.at(SimTime(20), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 2]));
        });
        w.run_until(SimTime(100));
        let eb: &Echo = w.node(b);
        assert_eq!(eb.received.len(), 1, "only the post-restart packet");
        assert_eq!(eb.received[0].2, vec![0, 2]);
        assert_eq!(w.counters().pkts_dropped_node_down(), 1);
        assert!(w.is_node_up(b));
    }

    #[test]
    fn in_flight_packet_to_crashing_node_is_dropped() {
        // delay 3: send at t=0, crash at t=1, delivery due t=3 is discarded.
        let (mut w, a, b, _l) = two_node_world();
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 9]));
        });
        w.at(SimTime(1), move |w| w.crash_node(b));
        w.run_until(SimTime(100));
        let eb: &Echo = w.node(b);
        assert!(eb.received.is_empty());
        assert_eq!(w.counters().pkts_dropped_node_down(), 1);
    }

    #[test]
    fn channel_corruption_flips_one_bit_and_counts() {
        let (mut w, a, _b, l) = quiet_world();
        w.set_channel_model(
            l,
            ChannelModel {
                corrupt_pm: 1000, // always corrupt
                ..ChannelModel::CLEAN
            },
        );
        let payload = vec![0u8, 0xAA, 0xBB, 0xCC];
        let sent = payload.clone();
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), sent));
        });
        w.run_until(SimTime(50));
        let eb: &Quiet = w.node(NodeIdx(1));
        assert_eq!(eb.received.len(), 1, "corruption must not drop the packet");
        let got = &eb.received[0].2;
        assert_eq!(got.len(), payload.len());
        let diff: u32 = got
            .iter()
            .zip(&payload)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
        assert_eq!(w.counters().pkts_corrupted(), 1);
    }

    #[test]
    fn channel_duplication_delivers_twice() {
        let (mut w, a, _b, l) = quiet_world();
        w.set_channel_model(
            l,
            ChannelModel {
                duplicate_pm: 1000,
                ..ChannelModel::CLEAN
            },
        );
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 7]));
        });
        w.run_until(SimTime(50));
        let eb: &Quiet = w.node(NodeIdx(1));
        assert_eq!(eb.received.len(), 2, "duplicate delivers two copies");
        assert_eq!(eb.received[0].2, eb.received[1].2);
        assert_eq!(w.counters().pkts_duplicated(), 1);
    }

    #[test]
    fn channel_reorder_delays_past_later_traffic() {
        let (mut w, a, _b, l) = quiet_world();
        w.set_channel_model(
            l,
            ChannelModel {
                reorder_pm: 1000,
                jitter: 100,
                ..ChannelModel::CLEAN
            },
        );
        // First packet is delayed by 1..=100 extra ticks; switch the
        // channel off before the second so it travels clean — the second
        // can overtake the first whenever the jitter draw exceeds 5.
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 1]));
        });
        w.at(SimTime(1), move |w| {
            w.set_channel_model(l, ChannelModel::CLEAN)
        });
        w.at(SimTime(5), move |w| {
            w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, 2]));
        });
        w.run_until(SimTime(500));
        let eb: &Quiet = w.node(NodeIdx(1));
        assert_eq!(eb.received.len(), 2);
        assert_eq!(w.counters().pkts_reordered(), 1);
        // Delivery time of the jittered copy is strictly later than clean.
        assert!(eb.received.iter().any(|r| r.2 == [0, 1] && r.0 > 3));
    }

    #[test]
    fn clean_channel_consumes_no_randomness() {
        // Installing a CLEAN model must leave the trace identical to not
        // touching the channel at all (same RNG stream).
        let run = |install: bool| {
            let (mut w, a, _b, l) = quiet_world();
            w.set_link_loss(l, 0.3);
            if install {
                w.set_channel_model(l, ChannelModel::CLEAN);
            }
            for t in 0..50 {
                w.at(SimTime(t), move |w| {
                    w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, t as u8]));
                });
            }
            w.run_until(SimTime(500));
            let eb: &mut Quiet = w.node_mut(NodeIdx(1));
            std::mem::take(&mut eb.received)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn adversarial_channel_is_deterministic() {
        let run = || {
            let (mut w, a, _b, l) = quiet_world();
            w.set_channel_model(
                l,
                ChannelModel {
                    corrupt_pm: 300,
                    duplicate_pm: 300,
                    reorder_pm: 300,
                    jitter: 40,
                },
            );
            for t in 0..80 {
                w.at(SimTime(t * 3), move |w| {
                    w.call_node(a, |_n, ctx| ctx.send(IfaceId(0), vec![0, t as u8]));
                });
            }
            w.run_until(SimTime(2000));
            let stats = (
                w.counters().pkts_corrupted(),
                w.counters().pkts_duplicated(),
                w.counters().pkts_reordered(),
            );
            let eb: &mut Quiet = w.node_mut(NodeIdx(1));
            (std::mem::take(&mut eb.received), stats)
        };
        let (recv_a, stats_a) = run();
        let (recv_b, stats_b) = run();
        assert_eq!(recv_a, recv_b);
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.0 > 0 && stats_a.1 > 0 && stats_a.2 > 0);
    }

    #[test]
    fn decode_failure_accounting() {
        let (mut w, a, _b, _l) = two_node_world();
        w.at(SimTime(0), move |w| {
            w.call_node(a, |_n, ctx| {
                ctx.count_decode_failure(IfaceId(0), "checksum");
                ctx.count_decode_failure(IfaceId(0), "truncated");
            });
        });
        w.run_until(SimTime(10));
        assert_eq!(w.counters().decode_failures(a), 2);
        assert_eq!(w.counters().decode_failures(NodeIdx(1)), 0);
        assert_eq!(w.counters().total_decode_failures(), 2);
    }

    #[test]
    fn crash_and_restart_are_idempotent() {
        let (mut w, _a, b, _l) = two_node_world();
        w.at(SimTime(0), move |w| {
            w.crash_node(b);
            w.crash_node(b); // no-op
        });
        w.at(SimTime(5), move |w| {
            w.restart_node(b);
            w.restart_node(b); // no-op
        });
        w.run_until(SimTime(50));
        assert!(w.is_node_up(b));
    }
}
