//! A deterministic discrete-event network simulator.
//!
//! This is the substrate on which the PIM reproduction runs its protocol
//! experiments — the stand-in for the authors' simulator and for the MBONE
//! testbed (see DESIGN.md, "Substitutions"). It provides:
//!
//! * simulated time in abstract ticks ([`SimTime`], [`Duration`]);
//! * point-to-point links and multi-access LANs with per-link propagation
//!   delay, administrative up/down, and independent per-receiver loss
//!   injection ([`World::add_p2p`], [`World::add_lan`]);
//! * a [`Node`] trait implemented by protocol router/host adapters; nodes
//!   receive packets and timer callbacks and emit packets through [`Ctx`];
//! * deterministic execution: seeded per-node RNG streams and a
//!   partition-independent canonical event order, so results are
//!   byte-identical for any region assignment and thread count
//!   ([`World::parallelize`], [`partition::auto_partition`]);
//! * overhead [`Counters`] for the paper's efficiency metrics (control
//!   packets, data packets, bytes per link; local member deliveries);
//! * a [`build::Topology`] planner that instantiates a world from a
//!   [`graph::Graph`] with canonical addressing.

#![warn(missing_docs)]

pub mod build;
pub mod counters;
pub mod partition;
pub mod profile;
pub mod time;
pub mod trace;
pub mod world;

pub use build::{host_addr, node_of_addr, router_addr, Topology};
pub use counters::{Counters, CtrlProto, LinkStats, PacketClass};
pub use profile::{RegionProfile, SimProfile};
pub use time::{earliest, Duration, SimTime};
pub use world::{
    CaptureRecord, ChannelModel, Ctx, IfaceId, Link, LinkCapacity, LinkId, LinkKind, Node, NodeIdx,
    TimerId, World,
};
