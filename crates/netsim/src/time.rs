//! Simulated time.
//!
//! Time is measured in abstract *ticks*. One tick equals one unit of link
//! delay in the underlying [`graph::Graph`]. Protocol timer constants
//! (refresh periods, holdtimes) are expressed in ticks as well; the defaults
//! chosen by the protocol crates keep the paper's ordering (per-hop delays ≪
//! refresh periods ≪ entry lifetimes).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A duration in simulated ticks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Duration(pub u64);

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from a tick count.
    pub const fn from_ticks(t: u64) -> Duration {
        Duration(t)
    }

    /// The tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating multiplication by a scalar (used for "3 × refresh period"
    /// style protocol constants).
    pub const fn saturating_mul(self, k: u64) -> Duration {
        Duration(self.0.saturating_mul(k))
    }
}

/// An absolute instant in simulated time, in ticks since simulation start.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Ticks since simulation start.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`; saturates at zero if `earlier` is in
    /// the future.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

/// The earlier of two optional deadlines (`None` means "no deadline").
///
/// Protocol engines fold their timer fields through this when computing
/// `next_deadline()`; adapters fold engine deadlines together the same way.
pub fn earliest(a: Option<SimTime>, b: Option<SimTime>) -> Option<SimTime> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, other: SimTime) -> Duration {
        self.since(other)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(self.0 + other.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(100);
        assert_eq!(t + Duration(5), SimTime(105));
        assert_eq!(SimTime(105) - t, Duration(5));
        assert_eq!(t - SimTime(105), Duration::ZERO); // saturating
        assert_eq!(Duration(3) + Duration(4), Duration(7));
        assert_eq!(Duration(10).saturating_mul(3), Duration(30));
        assert_eq!(Duration(u64::MAX).saturating_mul(2), Duration(u64::MAX));
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert!(Duration(1) < Duration(2));
    }

    #[test]
    fn earliest_folds_options() {
        assert_eq!(earliest(None, None), None);
        assert_eq!(earliest(Some(SimTime(3)), None), Some(SimTime(3)));
        assert_eq!(earliest(None, Some(SimTime(4))), Some(SimTime(4)));
        assert_eq!(
            earliest(Some(SimTime(9)), Some(SimTime(4))),
            Some(SimTime(4))
        );
    }

    #[test]
    fn display() {
        assert_eq!(SimTime(7).to_string(), "t7");
        assert_eq!(Duration(7).to_string(), "7t");
    }
}
