//! Overhead accounting.
//!
//! The paper's efficiency metric (§1): "state, control message processing,
//! and data packet processing required across the entire network in order to
//! deliver data packets to the members of the group." The simulator counts
//! the per-link message halves of that here; router state is counted by the
//! protocol adapters themselves (they know their table sizes).

use crate::time::SimTime;
use crate::world::{LinkId, NodeIdx};
use wire::ip::{Header, Protocol};

/// Whether a packet is protocol control traffic or application data.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PacketClass {
    /// IGMP-family control messages (IGMP, PIM, DVMRP, CBT, unicast
    /// routing).
    Control,
    /// Application data (including data encapsulated in PIM Registers —
    /// those count as control, since they are unicast protocol messages).
    Data,
}

impl PacketClass {
    /// Classify a serialized packet by its network-header protocol field.
    /// Unparseable packets count as control (conservative for the
    /// experiments, which report data-packet overhead for PIM).
    pub fn classify(packet: &[u8]) -> PacketClass {
        Self::classify_full(packet).0
    }

    /// Classify class *and* control sub-protocol in one header decode —
    /// the tx path calls this once per transmission so EXPERIMENTS.md can
    /// attribute control cost per protocol without re-parsing.
    pub fn classify_full(packet: &[u8]) -> (PacketClass, Option<CtrlProto>) {
        match Header::decap(packet) {
            Ok((h, _)) if h.proto == Protocol::Data => (PacketClass::Data, None),
            Ok((_, payload)) => (
                PacketClass::Control,
                Some(CtrlProto::of_type_octet(payload.first().copied())),
            ),
            Err(_) => (PacketClass::Control, Some(CtrlProto::Other)),
        }
    }
}

/// The control sub-protocol of a control packet, classified from the
/// message-type octet (the first payload byte) without a full message
/// decode. The type-octet ranges are fixed by `wire::message`:
/// `0x11..=0x13` IGMP, `0x20..=0x23` PIM, `0x30..=0x33` DVMRP,
/// `0x40..=0x45` CBT, `0x50..=0x52` unicast routing (DV/LSA/Hello).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CtrlProto {
    /// IGMP host-membership messages (query/report/RP-mapping).
    Igmp,
    /// PIM query/register/join-prune/RP-reachability.
    Pim,
    /// DVMRP probe/prune/graft/graft-ack.
    Dvmrp,
    /// CBT join/join-ack/echo/echo-reply/quit/flush.
    Cbt,
    /// Unicast routing control (DV updates, LSAs, hellos).
    Unicast,
    /// Unknown type octet or unparseable packet.
    #[default]
    Other,
}

impl CtrlProto {
    /// All sub-protocols, in report order.
    pub const ALL: [CtrlProto; 6] = [
        CtrlProto::Igmp,
        CtrlProto::Pim,
        CtrlProto::Dvmrp,
        CtrlProto::Cbt,
        CtrlProto::Unicast,
        CtrlProto::Other,
    ];

    /// Classify from a message-type octet (`None` = empty payload).
    pub fn of_type_octet(octet: Option<u8>) -> CtrlProto {
        match octet {
            Some(0x11..=0x13) => CtrlProto::Igmp,
            Some(0x20..=0x23) => CtrlProto::Pim,
            Some(0x30..=0x33) => CtrlProto::Dvmrp,
            Some(0x40..=0x45) => CtrlProto::Cbt,
            Some(0x50..=0x52) => CtrlProto::Unicast,
            _ => CtrlProto::Other,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CtrlProto::Igmp => "igmp",
            CtrlProto::Pim => "pim",
            CtrlProto::Dvmrp => "dvmrp",
            CtrlProto::Cbt => "cbt",
            CtrlProto::Unicast => "unicast",
            CtrlProto::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            CtrlProto::Igmp => 0,
            CtrlProto::Pim => 1,
            CtrlProto::Dvmrp => 2,
            CtrlProto::Cbt => 3,
            CtrlProto::Unicast => 4,
            CtrlProto::Other => 5,
        }
    }
}

/// Per-link transmit statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Control packets transmitted onto the link.
    pub control_pkts: u64,
    /// Data packets transmitted onto the link.
    pub data_pkts: u64,
    /// Total bytes transmitted (all classes).
    pub bytes: u64,
    /// Packets dropped by loss injection.
    pub losses: u64,
    /// Packet copies corrupted by the channel model (one byte flipped).
    pub corrupted: u64,
    /// Extra packet copies injected by the channel model's duplication.
    pub duplicated: u64,
    /// Packet copies delayed out of order by the channel model.
    pub reordered: u64,
    /// Data-class packets tail-dropped by the capacity model's bounded
    /// transmit queue (never reached the wire).
    pub queue_drops_data: u64,
    /// Control-class packets tail-dropped by the capacity model. Always
    /// zero while the link's control-priority class is enabled — the
    /// no-starvation oracle is exactly the assertion that this stays zero.
    pub queue_drops_ctrl: u64,
    /// ECN-style congestion marks (enqueues past the marking threshold).
    pub ecn_marks: u64,
    /// Highest transmit-queue backlog (bytes) observed on any direction
    /// of this link.
    pub peak_queue_bytes: u64,
    /// Largest configured queue bound seen at enqueue time — kept here so
    /// the bounded-queue oracle can check `peak ≤ cap` after a schedule
    /// has already healed the link back to unlimited.
    pub queue_cap_bytes: u64,
    /// Time of the most recent data-packet transmission.
    pub last_data_at: Option<SimTime>,
}

/// Grow a dense column to cover `idx` and hand back its slot. Link and
/// node ids are assigned densely by the world, so indexed columns replace
/// the hash-per-packet maps this module used to keep — `record_tx` runs
/// once per transmitted copy and sits on the event-loop hot path.
fn slot<T: Default + Clone>(column: &mut Vec<T>, idx: usize) -> &mut T {
    if idx >= column.len() {
        column.resize(idx + 1, T::default());
    }
    &mut column[idx]
}

/// World-wide overhead counters.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    /// Dense per-link stats indexed by [`LinkId`]; links past the end of
    /// the column have never recorded anything.
    per_link: Vec<LinkStats>,
    /// Control packets transmitted, broken down by sub-protocol
    /// ([`CtrlProto::index`] order).
    ctrl_tx: [u64; 6],
    /// Dense per-node local-delivery counts indexed by [`NodeIdx`].
    local_deliveries: Vec<u64>,
    /// Undecodable payloads dropped at each node's receive path.
    decode_failures: Vec<u64>,
    rx_control_pkts: u64,
    rx_data_pkts: u64,
    rx_bytes: u64,
    events_dispatched: u64,
    timers_fired: u64,
    timers_skipped_stale: u64,
    timers_cancelled_node_down: u64,
    pkts_dropped_node_down: u64,
}

impl Counters {
    pub(crate) fn record_tx(
        &mut self,
        link: LinkId,
        class: PacketClass,
        proto: Option<CtrlProto>,
        len: usize,
        at: SimTime,
    ) {
        let s = slot(&mut self.per_link, link.0);
        match class {
            PacketClass::Control => {
                s.control_pkts += 1;
                self.ctrl_tx[proto.unwrap_or(CtrlProto::Other).index()] += 1;
            }
            PacketClass::Data => {
                s.data_pkts += 1;
                s.last_data_at = Some(at);
            }
        }
        s.bytes += len as u64;
    }

    pub(crate) fn record_rx(&mut self, _link: LinkId, class: PacketClass, len: usize) {
        match class {
            PacketClass::Control => self.rx_control_pkts += 1,
            PacketClass::Data => self.rx_data_pkts += 1,
        }
        self.rx_bytes += len as u64;
    }

    pub(crate) fn record_dispatch(&mut self) {
        self.events_dispatched += 1;
    }

    pub(crate) fn record_timer_fired(&mut self) {
        self.timers_fired += 1;
    }

    pub(crate) fn record_timer_skipped(&mut self) {
        self.timers_skipped_stale += 1;
    }

    pub(crate) fn record_timer_cancelled_node_down(&mut self) {
        self.timers_cancelled_node_down += 1;
    }

    pub(crate) fn record_pkt_dropped_node_down(&mut self) {
        self.pkts_dropped_node_down += 1;
    }

    pub(crate) fn record_loss(&mut self, link: LinkId) {
        slot(&mut self.per_link, link.0).losses += 1;
    }

    pub(crate) fn record_corrupted(&mut self, link: LinkId) {
        slot(&mut self.per_link, link.0).corrupted += 1;
    }

    pub(crate) fn record_duplicated(&mut self, link: LinkId) {
        slot(&mut self.per_link, link.0).duplicated += 1;
    }

    pub(crate) fn record_reordered(&mut self, link: LinkId) {
        slot(&mut self.per_link, link.0).reordered += 1;
    }

    pub(crate) fn record_queue_drop(&mut self, link: LinkId, class: PacketClass) {
        let s = slot(&mut self.per_link, link.0);
        match class {
            PacketClass::Control => s.queue_drops_ctrl += 1,
            PacketClass::Data => s.queue_drops_data += 1,
        }
    }

    pub(crate) fn record_ecn_mark(&mut self, link: LinkId) {
        slot(&mut self.per_link, link.0).ecn_marks += 1;
    }

    pub(crate) fn record_queue_depth(&mut self, link: LinkId, backlog: u64, cap: u64) {
        let s = slot(&mut self.per_link, link.0);
        s.peak_queue_bytes = s.peak_queue_bytes.max(backlog);
        s.queue_cap_bytes = s.queue_cap_bytes.max(cap);
    }

    pub(crate) fn record_decode_failure(&mut self, node: NodeIdx) {
        *slot(&mut self.decode_failures, node.0) += 1;
    }

    pub(crate) fn record_local_delivery(&mut self, node: NodeIdx) {
        *slot(&mut self.local_deliveries, node.0) += 1;
    }

    /// Fold another counter shard into this one.
    ///
    /// The partitioned world keeps one `Counters` shard per region and
    /// merges them on demand. Merging is **associative and commutative**
    /// (every field is a sum except `last_data_at`, which is a max), so
    /// the merged totals are identical for any region assignment and any
    /// merge order — part of the byte-identity contract the parallel
    /// simulation core pins.
    pub fn merge(&mut self, other: &Counters) {
        for (link, o) in other.per_link.iter().enumerate() {
            let s = slot(&mut self.per_link, link);
            s.control_pkts += o.control_pkts;
            s.data_pkts += o.data_pkts;
            s.bytes += o.bytes;
            s.losses += o.losses;
            s.corrupted += o.corrupted;
            s.duplicated += o.duplicated;
            s.reordered += o.reordered;
            s.queue_drops_data += o.queue_drops_data;
            s.queue_drops_ctrl += o.queue_drops_ctrl;
            s.ecn_marks += o.ecn_marks;
            // Peaks and caps merge by max — max is associative and
            // commutative, so the merged totals stay partition-invariant.
            s.peak_queue_bytes = s.peak_queue_bytes.max(o.peak_queue_bytes);
            s.queue_cap_bytes = s.queue_cap_bytes.max(o.queue_cap_bytes);
            s.last_data_at = match (s.last_data_at, o.last_data_at) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        for (i, n) in other.ctrl_tx.iter().enumerate() {
            self.ctrl_tx[i] += n;
        }
        for (node, n) in other.local_deliveries.iter().enumerate() {
            *slot(&mut self.local_deliveries, node) += n;
        }
        for (node, n) in other.decode_failures.iter().enumerate() {
            *slot(&mut self.decode_failures, node) += n;
        }
        self.rx_control_pkts += other.rx_control_pkts;
        self.rx_data_pkts += other.rx_data_pkts;
        self.rx_bytes += other.rx_bytes;
        self.events_dispatched += other.events_dispatched;
        self.timers_fired += other.timers_fired;
        self.timers_skipped_stale += other.timers_skipped_stale;
        self.timers_cancelled_node_down += other.timers_cancelled_node_down;
        self.pkts_dropped_node_down += other.pkts_dropped_node_down;
    }

    /// Stats for one link (zeroes if it never carried traffic).
    pub fn link(&self, link: LinkId) -> LinkStats {
        self.per_link.get(link.0).copied().unwrap_or_default()
    }

    /// Iterate over links that carried any traffic.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &LinkStats)> + '_ {
        self.per_link
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != LinkStats::default())
            .map(|(l, s)| (LinkId(l), s))
    }

    /// Total control packets transmitted network-wide.
    pub fn total_control_pkts(&self) -> u64 {
        self.per_link.iter().map(|s| s.control_pkts).sum()
    }

    /// Control packets transmitted for one sub-protocol.
    pub fn control_pkts_by(&self, proto: CtrlProto) -> u64 {
        self.ctrl_tx[proto.index()]
    }

    /// The per-sub-protocol control-packet breakdown, in
    /// [`CtrlProto::ALL`] order.
    pub fn control_breakdown(&self) -> [(CtrlProto, u64); 6] {
        CtrlProto::ALL.map(|p| (p, self.ctrl_tx[p.index()]))
    }

    /// Total data packets transmitted network-wide (each link transit counts
    /// once — this is the paper's "data packet processing across the entire
    /// network").
    pub fn total_data_pkts(&self) -> u64 {
        self.per_link.iter().map(|s| s.data_pkts).sum()
    }

    /// Total bytes transmitted network-wide.
    pub fn total_bytes(&self) -> u64 {
        self.per_link.iter().map(|s| s.bytes).sum()
    }

    /// Total packets dropped by loss injection.
    pub fn losses(&self) -> u64 {
        self.per_link.iter().map(|s| s.losses).sum()
    }

    /// Total packet copies corrupted by the channel model.
    pub fn pkts_corrupted(&self) -> u64 {
        self.per_link.iter().map(|s| s.corrupted).sum()
    }

    /// Total extra packet copies injected by channel duplication.
    pub fn pkts_duplicated(&self) -> u64 {
        self.per_link.iter().map(|s| s.duplicated).sum()
    }

    /// Total packet copies delayed out of order by the channel model.
    pub fn pkts_reordered(&self) -> u64 {
        self.per_link.iter().map(|s| s.reordered).sum()
    }

    /// Total data-class packets tail-dropped by bounded transmit queues.
    pub fn queue_drops_data(&self) -> u64 {
        self.per_link.iter().map(|s| s.queue_drops_data).sum()
    }

    /// Total control-class packets tail-dropped by bounded transmit
    /// queues. Structurally zero whenever control priority is enabled.
    pub fn queue_drops_ctrl(&self) -> u64 {
        self.per_link.iter().map(|s| s.queue_drops_ctrl).sum()
    }

    /// Total ECN-style congestion marks network-wide.
    pub fn ecn_marks(&self) -> u64 {
        self.per_link.iter().map(|s| s.ecn_marks).sum()
    }

    /// Highest transmit-queue backlog (bytes) observed on any link.
    pub fn peak_queue_bytes(&self) -> u64 {
        self.per_link
            .iter()
            .map(|s| s.peak_queue_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Undecodable payloads dropped at `node`'s receive path.
    pub fn decode_failures(&self, node: NodeIdx) -> u64 {
        self.decode_failures.get(node.0).copied().unwrap_or(0)
    }

    /// Undecodable payloads dropped network-wide. Zero on a clean channel:
    /// every encoder produces decodable bytes, so decode failures can only
    /// come from channel corruption (asserted by the hardening oracle).
    pub fn total_decode_failures(&self) -> u64 {
        self.decode_failures.iter().sum()
    }

    /// Data packets delivered to local group members at `node`.
    pub fn local_deliveries(&self, node: NodeIdx) -> u64 {
        self.local_deliveries.get(node.0).copied().unwrap_or(0)
    }

    /// Total data packets delivered to local group members anywhere.
    pub fn total_local_deliveries(&self) -> u64 {
        self.local_deliveries.iter().sum()
    }

    /// Number of distinct links that carried at least one data packet.
    pub fn links_carrying_data(&self) -> usize {
        self.per_link.iter().filter(|s| s.data_pkts > 0).count()
    }

    /// Events the world actually dispatched (deliveries + timers + scripts).
    /// The paper's scaling argument is that this should track state churn,
    /// not wall-clock: an idle network should dispatch almost nothing.
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Timer events that fired (dispatched to a node).
    pub fn timers_fired(&self) -> u64 {
        self.timers_fired
    }

    /// Timer heap entries popped but skipped because the timer had been
    /// cancelled or rescheduled (lazy-deletion cost of the timer wheel).
    pub fn timers_skipped_stale(&self) -> u64 {
        self.timers_skipped_stale
    }

    /// Armed timers cancelled because their owning node crashed (see
    /// [`crate::World::crash_node`]); without this sweep, stale wakeups
    /// would fire against a dead node.
    pub fn timers_cancelled_node_down(&self) -> u64 {
        self.timers_cancelled_node_down
    }

    /// Packets discarded because the receiving node was down — either at
    /// transmit time (attachment is dead) or in flight when the node
    /// crashed.
    pub fn pkts_dropped_node_down(&self) -> u64 {
        self.pkts_dropped_node_down
    }

    /// Control packets delivered to nodes (receive side, per event loop).
    pub fn rx_control_pkts(&self) -> u64 {
        self.rx_control_pkts
    }

    /// Data packets delivered to nodes (receive side, per event loop).
    pub fn rx_data_pkts(&self) -> u64 {
        self.rx_data_pkts
    }

    /// All packets delivered to nodes.
    pub fn rx_pkts(&self) -> u64 {
        self.rx_control_pkts + self.rx_data_pkts
    }

    /// Total bytes delivered to nodes.
    pub fn rx_bytes(&self) -> u64 {
        self.rx_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::ip::{Header, Protocol};
    use wire::Addr;

    fn data_packet() -> Vec<u8> {
        Header {
            proto: Protocol::Data,
            ttl: 8,
            src: Addr::new(10, 0, 0, 1),
            dst: Addr::new(239, 0, 0, 1),
        }
        .encap(b"payload")
    }

    fn control_packet() -> Vec<u8> {
        Header {
            proto: Protocol::Igmp,
            ttl: 1,
            src: Addr::new(10, 0, 0, 1),
            dst: Addr::ALL_PIM_ROUTERS,
        }
        .encap(&[0; 4])
    }

    #[test]
    fn classification() {
        assert_eq!(PacketClass::classify(&data_packet()), PacketClass::Data);
        assert_eq!(
            PacketClass::classify(&control_packet()),
            PacketClass::Control
        );
        assert_eq!(PacketClass::classify(&[1, 2, 3]), PacketClass::Control);
    }

    #[test]
    fn ctrl_proto_type_octet_ranges() {
        use CtrlProto::*;
        let cases = [
            (0x11, Igmp),
            (0x13, Igmp),
            (0x20, Pim),
            (0x23, Pim),
            (0x30, Dvmrp),
            (0x33, Dvmrp),
            (0x40, Cbt),
            (0x45, Cbt),
            (0x50, Unicast),
            (0x52, Unicast),
            (0x00, Other),
            (0x60, Other),
        ];
        for (octet, want) in cases {
            assert_eq!(
                CtrlProto::of_type_octet(Some(octet)),
                want,
                "octet {octet:#04x}"
            );
        }
        assert_eq!(CtrlProto::of_type_octet(None), Other);
    }

    #[test]
    fn classify_full_attributes_sub_protocol() {
        let (class, proto) = PacketClass::classify_full(&data_packet());
        assert_eq!(class, PacketClass::Data);
        assert_eq!(proto, None);
        // control_packet() carries a zeroed payload: type octet 0 = Other.
        let (class, proto) = PacketClass::classify_full(&control_packet());
        assert_eq!(class, PacketClass::Control);
        assert_eq!(proto, Some(CtrlProto::Other));
        let (class, proto) = PacketClass::classify_full(&[1, 2, 3]);
        assert_eq!(class, PacketClass::Control);
        assert_eq!(proto, Some(CtrlProto::Other));
    }

    #[test]
    fn control_breakdown_accumulates_per_proto() {
        let mut c = Counters::default();
        let l = LinkId(0);
        c.record_tx(
            l,
            PacketClass::Control,
            Some(CtrlProto::Pim),
            20,
            SimTime(1),
        );
        c.record_tx(
            l,
            PacketClass::Control,
            Some(CtrlProto::Pim),
            20,
            SimTime(2),
        );
        c.record_tx(
            l,
            PacketClass::Control,
            Some(CtrlProto::Igmp),
            20,
            SimTime(3),
        );
        c.record_tx(l, PacketClass::Control, None, 20, SimTime(4));
        c.record_tx(l, PacketClass::Data, None, 30, SimTime(5));
        assert_eq!(c.control_pkts_by(CtrlProto::Pim), 2);
        assert_eq!(c.control_pkts_by(CtrlProto::Igmp), 1);
        assert_eq!(c.control_pkts_by(CtrlProto::Other), 1);
        assert_eq!(c.control_pkts_by(CtrlProto::Cbt), 0);
        let total: u64 = c.control_breakdown().iter().map(|&(_, n)| n).sum();
        assert_eq!(total, c.total_control_pkts());
    }

    #[test]
    fn accounting() {
        let mut c = Counters::default();
        let l = LinkId(0);
        c.record_tx(l, PacketClass::Data, None, 30, SimTime(5));
        c.record_tx(l, PacketClass::Control, None, 20, SimTime(6));
        c.record_tx(LinkId(1), PacketClass::Data, None, 30, SimTime(7));
        c.record_loss(l);
        c.record_local_delivery(NodeIdx(3));
        c.record_local_delivery(NodeIdx(3));

        assert_eq!(c.link(l).data_pkts, 1);
        assert_eq!(c.link(l).control_pkts, 1);
        assert_eq!(c.link(l).bytes, 50);
        assert_eq!(c.link(l).last_data_at, Some(SimTime(5)));
        assert_eq!(c.link(LinkId(9)).data_pkts, 0);
        assert_eq!(c.total_data_pkts(), 2);
        assert_eq!(c.total_control_pkts(), 1);
        assert_eq!(c.total_bytes(), 80);
        assert_eq!(c.losses(), 1);
        assert_eq!(c.local_deliveries(NodeIdx(3)), 2);
        assert_eq!(c.local_deliveries(NodeIdx(0)), 0);
        assert_eq!(c.total_local_deliveries(), 2);
        assert_eq!(c.links_carrying_data(), 2);
    }

    /// Sharded recording + merge must reproduce single-heap totals, and
    /// the merge must be associative: `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)`.
    #[test]
    fn merge_matches_single_heap_and_is_associative() {
        // One recording script, replayable into any counter shard.
        let record = |c: &mut Counters, salt: u64| {
            let l = LinkId((salt % 3) as usize);
            c.record_tx(l, PacketClass::Data, None, 100, SimTime(10 + salt));
            c.record_tx(
                l,
                PacketClass::Control,
                Some(CtrlProto::Pim),
                20,
                SimTime(salt),
            );
            c.record_rx(l, PacketClass::Data, 100);
            c.record_dispatch();
            c.record_timer_fired();
            c.record_loss(l);
            c.record_corrupted(l);
            c.record_queue_drop(l, PacketClass::Data);
            if salt.is_multiple_of(3) {
                c.record_queue_drop(l, PacketClass::Control);
            }
            c.record_ecn_mark(l);
            c.record_queue_depth(l, 64 + salt * 8, 256);
            c.record_local_delivery(NodeIdx(salt as usize));
            c.record_decode_failure(NodeIdx(salt as usize));
            if salt.is_multiple_of(2) {
                c.record_timer_skipped();
                c.record_pkt_dropped_node_down();
            }
        };

        // The "single heap": everything recorded into one Counters.
        let mut whole = Counters::default();
        for salt in 0..9 {
            record(&mut whole, salt);
        }

        // The "region shards": the same records split three ways.
        let mut shards = [
            Counters::default(),
            Counters::default(),
            Counters::default(),
        ];
        for salt in 0..9 {
            record(&mut shards[(salt % 3) as usize], salt);
        }

        let merge_all = |order: &[usize]| {
            let mut total = Counters::default();
            for &i in order {
                total.merge(&shards[i]);
            }
            total
        };
        let eq = |a: &Counters, b: &Counters| {
            assert_eq!(a.total_data_pkts(), b.total_data_pkts());
            assert_eq!(a.total_control_pkts(), b.total_control_pkts());
            assert_eq!(a.control_breakdown(), b.control_breakdown());
            assert_eq!(a.total_bytes(), b.total_bytes());
            assert_eq!(a.losses(), b.losses());
            assert_eq!(a.pkts_corrupted(), b.pkts_corrupted());
            assert_eq!(a.queue_drops_data(), b.queue_drops_data());
            assert_eq!(a.queue_drops_ctrl(), b.queue_drops_ctrl());
            assert_eq!(a.ecn_marks(), b.ecn_marks());
            assert_eq!(a.peak_queue_bytes(), b.peak_queue_bytes());
            assert_eq!(a.rx_pkts(), b.rx_pkts());
            assert_eq!(a.events_dispatched(), b.events_dispatched());
            assert_eq!(a.timers_fired(), b.timers_fired());
            assert_eq!(a.timers_skipped_stale(), b.timers_skipped_stale());
            assert_eq!(a.pkts_dropped_node_down(), b.pkts_dropped_node_down());
            assert_eq!(a.total_local_deliveries(), b.total_local_deliveries());
            assert_eq!(a.total_decode_failures(), b.total_decode_failures());
            for l in 0..3 {
                assert_eq!(a.link(LinkId(l)), b.link(LinkId(l)), "link {l}");
            }
        };

        // Shard-merge equals the single-heap totals, in any merge order.
        eq(&merge_all(&[0, 1, 2]), &whole);
        eq(&merge_all(&[2, 0, 1]), &whole);

        // Associativity: ((a ⊕ b) ⊕ c) == (a ⊕ (b ⊕ c)).
        let mut left = shards[0].clone();
        left.merge(&shards[1]);
        left.merge(&shards[2]);
        let mut bc = shards[1].clone();
        bc.merge(&shards[2]);
        let mut right = shards[0].clone();
        right.merge(&bc);
        eq(&left, &right);
    }
}
