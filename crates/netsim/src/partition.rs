//! Delay-aware automatic region partitioning for the parallel core.
//!
//! The conservative window scheme in [`crate::World`] advances all
//! regions in lock-step windows of width `L = min cross-region link
//! delay`, so a good partition (a) has enough regions to keep every
//! worker busy and (b) only cuts *slow* links, making `L` — and thus the
//! window, the unit of useful parallel work — as large as possible.
//!
//! [`auto_partition`] implements a min-cut-by-delay heuristic over those
//! two goals: for every candidate delay threshold it contracts all links
//! faster than the threshold (union-find) and scores the resulting
//! partition by `min(regions, target) * threshold` — regions beyond the
//! thread count add no parallelism, and the threshold is exactly the
//! lookahead the cut would yield. Zero-delay links are never cut (the
//! lock-step scheme needs `L >= 1` to make progress), which also
//! guarantees the returned partition is always safe to run.
//!
//! The result is only a performance choice: the world's determinism
//! contract makes *every* partition produce byte-identical results, so
//! explicit overrides (e.g. [`crate::build::Topology::regions_by`]) can
//! encode domain knowledge without risking correctness.

use crate::world::Link;

/// Plain union-find with path halving and union by size.
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
    }

    /// Dense region ids (0..count) in order of first appearance by node
    /// index — the canonical renumbering, independent of union order.
    fn dense(&mut self, n: usize) -> (Vec<u32>, usize) {
        let mut lut = std::collections::HashMap::new();
        let mut next = 0u32;
        let assign = (0..n as u32)
            .map(|i| {
                let root = self.find(i);
                *lut.entry(root).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                })
            })
            .collect();
        (assign, next as usize)
    }
}

/// Assign `nodes` to regions by contracting every link faster than a
/// chosen delay threshold, targeting about one region per thread.
///
/// Candidate thresholds are the distinct link delays (clamped up to 1 —
/// zero-delay links are always contracted so the conservative lookahead
/// stays `>= 1`). Each candidate is scored `min(regions, target) *
/// threshold`; the best score wins, ties preferring the larger
/// threshold (bigger windows beat surplus regions). Returns the
/// all-zeros single-region assignment when no cut yields two regions
/// (e.g. a clique of uniform fast links smaller than any threshold).
pub fn auto_partition(nodes: usize, links: &[Link], target: usize) -> Vec<u32> {
    if nodes == 0 {
        return Vec::new();
    }
    let target = target.max(1);
    let mut cuts: Vec<u64> = links.iter().map(|l| l.delay.ticks().max(1)).collect();
    cuts.push(1);
    cuts.sort_unstable();
    cuts.dedup();
    let mut best: Option<(u64, u64, Vec<u32>)> = None; // (score, cut, assign)
    for &cut in &cuts {
        let mut dsu = Dsu::new(nodes);
        for l in links {
            if l.delay.ticks() < cut {
                let mut ends = l.attachments.iter().map(|(n, _)| n.0 as u32);
                if let Some(first) = ends.next() {
                    for other in ends {
                        dsu.union(first, other);
                    }
                }
            }
        }
        let (assign, count) = dsu.dense(nodes);
        if count < 2 {
            continue;
        }
        let score = count.min(target) as u64 * cut;
        let better = match &best {
            None => true,
            Some((s, c, _)) => score > *s || (score == *s && cut > *c),
        };
        if better {
            best = Some((score, cut, assign));
        }
    }
    best.map(|(_, _, a)| a).unwrap_or_else(|| vec![0; nodes])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;
    use crate::world::{ChannelModel, IfaceId, LinkCapacity, LinkKind, NodeIdx};

    fn link(delay: u64, ends: &[usize]) -> Link {
        Link {
            kind: if ends.len() == 2 {
                LinkKind::PointToPoint
            } else {
                LinkKind::Lan
            },
            delay: Duration(delay),
            up: true,
            loss: 0.0,
            channel: ChannelModel::CLEAN,
            capacity: LinkCapacity::UNLIMITED,
            attachments: ends
                .iter()
                .enumerate()
                .map(|(i, &n)| (NodeIdx(n), IfaceId(i as u32)))
                .collect(),
        }
    }

    #[test]
    fn cuts_the_slow_link() {
        // n0 -1- n1 -5- n2 -1- n3: the delay-5 link is the natural cut.
        let links = vec![link(1, &[0, 1]), link(5, &[1, 2]), link(1, &[2, 3])];
        let assign = auto_partition(4, &links, 4);
        assert_eq!(assign, vec![0, 0, 1, 1]);
    }

    #[test]
    fn zero_delay_links_are_never_cut() {
        // A zero-delay pair glued to a slow island: the delay-0 link must
        // be contracted whatever else happens (lookahead >= 1).
        let links = vec![link(0, &[0, 1]), link(4, &[1, 2])];
        let assign = auto_partition(3, &links, 8);
        assert_eq!(assign[0], assign[1], "delay-0 link was cut");
        assert_ne!(assign[0], assign[2]);
    }

    #[test]
    fn uniform_delays_split_per_node() {
        // Uniform delay-3 line: cutting everything gives one region per
        // node with lookahead 3 — more regions than target is fine, the
        // score caps at target.
        let links = vec![link(3, &[0, 1]), link(3, &[1, 2]), link(3, &[2, 3])];
        let assign = auto_partition(4, &links, 2);
        assert_eq!(assign, vec![0, 1, 2, 3]);
    }

    #[test]
    fn connected_fast_clique_stays_single_region() {
        // All nodes joined by delay-0 links: no legal cut exists.
        let links = vec![link(0, &[0, 1]), link(0, &[1, 2])];
        let assign = auto_partition(3, &links, 4);
        assert_eq!(assign, vec![0, 0, 0]);
    }

    #[test]
    fn isolated_nodes_form_singletons() {
        let assign = auto_partition(3, &[], 4);
        assert_eq!(assign, vec![0, 1, 2]);
    }

    #[test]
    fn prefers_larger_lookahead_on_tied_region_count() {
        // Two candidate cuts both yield 2 regions for target 2: cutting
        // at 7 (contract the 2s) or at 2 (cut everything — 4 regions,
        // capped to 2 by min). Score 2*7=14 beats 2*2=4.
        let links = vec![link(2, &[0, 1]), link(7, &[1, 2]), link(2, &[2, 3])];
        let assign = auto_partition(4, &links, 2);
        assert_eq!(assign, vec![0, 0, 1, 1]);
    }
}
