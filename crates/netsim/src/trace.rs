//! Human-readable packet tracing — the simulator's `tcpdump`.
//!
//! [`describe_packet`] renders any serialized packet (network header +
//! IGMP-family payload) as a one-line summary, decoding PIM/IGMP/DVMRP/CBT
//! semantics. Example scenarios and debugging sessions use it to narrate
//! what crossed a link:
//!
//! ```
//! use netsim::trace::describe_packet;
//! use wire::ip::{Header, Protocol};
//! use wire::pim::{GroupEntry, JoinPrune, SourceEntry};
//! use wire::{Addr, Group, Message};
//!
//! let msg = Message::PimJoinPrune(JoinPrune {
//!     upstream_neighbor: Addr::new(10, 0, 0, 2),
//!     holdtime: 180,
//!     groups: vec![GroupEntry::join(
//!         Group::test(1),
//!         SourceEntry::shared_tree(Addr::new(10, 0, 0, 9)),
//!     )],
//! });
//! let pkt = Header {
//!     proto: Protocol::Igmp,
//!     ttl: 1,
//!     src: Addr::new(10, 0, 0, 1),
//!     dst: Addr::ALL_PIM_ROUTERS,
//! }
//! .encap(&msg.encode());
//! let line = describe_packet(&pkt);
//! assert!(line.contains("Join/Prune"));
//! assert!(line.contains("join={*,239.1.0.1}"));
//! ```

use std::fmt::Write as _;
use wire::ip::{Header, Protocol};
use wire::pim::SourceEntry;
use wire::Message;

fn entry_str(group: wire::Group, e: &SourceEntry) -> String {
    if e.wildcard {
        format!("{{*,{group}}}")
    } else if e.rp_bit {
        format!("{{{},{group}}}rpt", e.addr)
    } else {
        format!("{{{},{group}}}", e.addr)
    }
}

/// Render a serialized packet as a one-line human-readable summary.
/// Never panics: malformed packets render as `corrupt(...)`.
pub fn describe_packet(packet: &[u8]) -> String {
    let Ok((h, payload)) = Header::decap(packet) else {
        return format!("corrupt({} bytes)", packet.len());
    };
    let mut s = format!("{} > {} ttl={} ", h.src, h.dst, h.ttl);
    match h.proto {
        Protocol::Data => {
            let _ = write!(s, "DATA {} bytes", payload.len());
        }
        Protocol::Igmp => match Message::decode(payload) {
            Err(e) => {
                let _ = write!(s, "IGMP-family corrupt: {e}");
            }
            Ok(msg) => match msg {
                Message::HostQuery(q) => {
                    let _ = write!(s, "IGMP Query max_resp={}", q.max_resp_time);
                }
                Message::HostReport(r) => {
                    let _ = write!(s, "IGMP Report group={}", r.group);
                }
                Message::RpMapping(m) => {
                    let _ = write!(s, "IGMP RP-Mapping group={} rps={:?}", m.group, m.rps);
                }
                Message::PimQuery(q) => {
                    let _ = write!(s, "PIM Query holdtime={}", q.holdtime);
                }
                Message::PimRegister(r) => {
                    let _ = write!(
                        s,
                        "PIM Register group={} source={} ({} data bytes)",
                        r.group,
                        r.source,
                        r.payload.len()
                    );
                }
                Message::PimJoinPrune(jp) => {
                    let _ = write!(s, "PIM Join/Prune to={} ", jp.upstream_neighbor);
                    let mut joins = Vec::new();
                    let mut prunes = Vec::new();
                    for ge in &jp.groups {
                        joins.extend(ge.joins.iter().map(|e| entry_str(ge.group, e)));
                        prunes.extend(ge.prunes.iter().map(|e| entry_str(ge.group, e)));
                    }
                    let _ = write!(
                        s,
                        "join={} prune={} holdtime={}",
                        if joins.is_empty() {
                            "-".into()
                        } else {
                            joins.join(",")
                        },
                        if prunes.is_empty() {
                            "-".into()
                        } else {
                            prunes.join(",")
                        },
                        jp.holdtime
                    );
                }
                Message::PimRpReachability(r) => {
                    let _ = write!(
                        s,
                        "PIM RP-Reachability group={} rp={} holdtime={}",
                        r.group, r.rp, r.holdtime
                    );
                }
                Message::DvmrpProbe(p) => {
                    let _ = write!(s, "DVMRP Probe neighbors={}", p.neighbors.len());
                }
                Message::DvmrpPrune(p) => {
                    let _ = write!(
                        s,
                        "DVMRP Prune ({},{}) lifetime={}",
                        p.source, p.group, p.lifetime
                    );
                }
                Message::DvmrpGraft(g) => {
                    let _ = write!(s, "DVMRP Graft ({},{})", g.source, g.group);
                }
                Message::DvmrpGraftAck(g) => {
                    let _ = write!(s, "DVMRP Graft-Ack ({},{})", g.source, g.group);
                }
                Message::CbtJoinRequest(j) => {
                    let _ = write!(
                        s,
                        "CBT Join-Request group={} core={} origin={}",
                        j.group, j.core, j.originator
                    );
                }
                Message::CbtJoinAck(j) => {
                    let _ = write!(s, "CBT Join-Ack group={} core={}", j.group, j.core);
                }
                Message::CbtEcho(e) => {
                    let _ = write!(s, "CBT Echo groups={}", e.groups.len());
                }
                Message::CbtEchoReply(e) => {
                    let _ = write!(s, "CBT Echo-Reply groups={}", e.groups.len());
                }
                Message::CbtQuit(q) => {
                    let _ = write!(s, "CBT Quit group={}", q.group);
                }
                Message::CbtFlushTree(f) => {
                    let _ = write!(s, "CBT Flush-Tree group={}", f.group);
                }
                Message::DvUpdate(u) => {
                    let _ = write!(s, "DV Update routes={}", u.routes.len());
                }
                Message::Lsa(l) => {
                    let _ = write!(
                        s,
                        "LSA origin={} seq={} links={}",
                        l.origin,
                        l.seq,
                        l.links.len()
                    );
                }
                Message::Hello(hh) => {
                    let _ = write!(s, "Hello holdtime={}", hh.holdtime);
                }
            },
        },
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use wire::pim::{GroupEntry, JoinPrune, Register, SourceEntry};
    use wire::{Addr, Group};

    fn wrap(msg: &Message) -> Vec<u8> {
        Header {
            proto: Protocol::Igmp,
            ttl: 1,
            src: Addr::new(10, 0, 0, 1),
            dst: Addr::ALL_PIM_ROUTERS,
        }
        .encap(&msg.encode())
    }

    /// Every [`Message`] variant has a render path here; this table
    /// pins each one (the compiler's exhaustiveness check on
    /// `all_variants` keeps the table honest when variants are added).
    #[test]
    fn every_message_variant_renders() {
        use wire::{cbt, dvmrp, igmp, pim, unicast};

        let g = Group::test(3);
        let a = Addr::new(10, 0, 0, 7);
        let b = Addr::new(10, 0, 0, 9);
        let all_variants: Vec<(Message, &[&str])> = vec![
            (
                Message::HostQuery(igmp::HostQuery { max_resp_time: 10 }),
                &["IGMP Query max_resp=10"],
            ),
            (
                Message::HostReport(igmp::HostReport { group: g }),
                &["IGMP Report group=239.1.0.3"],
            ),
            (
                Message::RpMapping(igmp::RpMapping {
                    group: g,
                    rps: vec![a, b],
                }),
                &[
                    "IGMP RP-Mapping group=239.1.0.3",
                    "rps=[10.0.0.7, 10.0.0.9]",
                ],
            ),
            (
                Message::PimQuery(pim::Query { holdtime: 105 }),
                &["PIM Query holdtime=105"],
            ),
            (
                Message::PimRegister(pim::Register {
                    group: g,
                    source: a,
                    payload: vec![0; 32],
                }),
                &[
                    "PIM Register group=239.1.0.3 source=10.0.0.7",
                    "32 data bytes",
                ],
            ),
            (
                Message::PimJoinPrune(pim::JoinPrune {
                    upstream_neighbor: b,
                    holdtime: 180,
                    groups: vec![pim::GroupEntry {
                        group: g,
                        joins: vec![pim::SourceEntry::shared_tree(a)],
                        prunes: vec![pim::SourceEntry::source_on_rp_tree(a)],
                    }],
                }),
                &[
                    "PIM Join/Prune to=10.0.0.9",
                    "join={*,239.1.0.3}",
                    "prune={10.0.0.7,239.1.0.3}rpt",
                    "holdtime=180",
                ],
            ),
            (
                Message::PimRpReachability(pim::RpReachability {
                    group: g,
                    rp: b,
                    holdtime: 210,
                }),
                &["PIM RP-Reachability group=239.1.0.3 rp=10.0.0.9 holdtime=210"],
            ),
            (
                Message::DvmrpProbe(dvmrp::Probe {
                    neighbors: vec![a, b],
                }),
                &["DVMRP Probe neighbors=2"],
            ),
            (
                Message::DvmrpPrune(dvmrp::Prune {
                    source: a,
                    group: g,
                    lifetime: 200,
                }),
                &["DVMRP Prune (10.0.0.7,239.1.0.3) lifetime=200"],
            ),
            (
                Message::DvmrpGraft(dvmrp::Graft {
                    source: a,
                    group: g,
                }),
                &["DVMRP Graft (10.0.0.7,239.1.0.3)"],
            ),
            (
                Message::DvmrpGraftAck(dvmrp::GraftAck {
                    source: a,
                    group: g,
                }),
                &["DVMRP Graft-Ack (10.0.0.7,239.1.0.3)"],
            ),
            (
                Message::CbtJoinRequest(cbt::JoinRequest {
                    group: g,
                    core: b,
                    originator: a,
                }),
                &["CBT Join-Request group=239.1.0.3 core=10.0.0.9 origin=10.0.0.7"],
            ),
            (
                Message::CbtJoinAck(cbt::JoinAck {
                    group: g,
                    core: b,
                    originator: a,
                }),
                &["CBT Join-Ack group=239.1.0.3 core=10.0.0.9"],
            ),
            (
                Message::CbtEcho(cbt::Echo {
                    groups: vec![g, Group::test(4)],
                }),
                &["CBT Echo groups=2"],
            ),
            (
                Message::CbtEchoReply(cbt::EchoReply { groups: vec![g] }),
                &["CBT Echo-Reply groups=1"],
            ),
            (
                Message::CbtQuit(cbt::Quit { group: g }),
                &["CBT Quit group=239.1.0.3"],
            ),
            (
                Message::CbtFlushTree(cbt::FlushTree { group: g }),
                &["CBT Flush-Tree group=239.1.0.3"],
            ),
            (
                Message::DvUpdate(unicast::DvUpdate {
                    routes: vec![unicast::DvRoute { dst: a, metric: 3 }],
                }),
                &["DV Update routes=1"],
            ),
            (
                Message::Lsa(unicast::Lsa {
                    origin: a,
                    seq: 12,
                    links: vec![unicast::LsaLink {
                        neighbor: b,
                        cost: 1,
                    }],
                }),
                &["LSA origin=10.0.0.7 seq=12 links=1"],
            ),
            (
                Message::Hello(unicast::Hello { holdtime: 30 }),
                &["Hello holdtime=30"],
            ),
        ];

        // Exhaustiveness: a new Message variant must be added to the table.
        let covered = |m: &Message| {
            all_variants
                .iter()
                .any(|(t, _)| std::mem::discriminant(t) == std::mem::discriminant(m))
        };
        for (msg, _) in &all_variants {
            match msg {
                Message::HostQuery(_)
                | Message::HostReport(_)
                | Message::RpMapping(_)
                | Message::PimQuery(_)
                | Message::PimRegister(_)
                | Message::PimJoinPrune(_)
                | Message::PimRpReachability(_)
                | Message::DvmrpProbe(_)
                | Message::DvmrpPrune(_)
                | Message::DvmrpGraft(_)
                | Message::DvmrpGraftAck(_)
                | Message::CbtJoinRequest(_)
                | Message::CbtJoinAck(_)
                | Message::CbtEcho(_)
                | Message::CbtEchoReply(_)
                | Message::CbtQuit(_)
                | Message::CbtFlushTree(_)
                | Message::DvUpdate(_)
                | Message::Lsa(_)
                | Message::Hello(_) => assert!(covered(msg)),
            }
        }

        for (msg, wants) in &all_variants {
            let line = describe_packet(&wrap(msg));
            assert!(
                line.starts_with("10.0.0.1 > 224.0.0.2 ttl=1 "),
                "missing header prefix: {line}"
            );
            for want in *wants {
                assert!(line.contains(want), "{msg:?}: want {want:?} in {line:?}");
            }
        }
    }

    #[test]
    fn join_prune_renders_entries() {
        let msg = Message::PimJoinPrune(JoinPrune {
            upstream_neighbor: Addr::new(10, 0, 0, 2),
            holdtime: 180,
            groups: vec![GroupEntry {
                group: Group::test(1),
                joins: vec![SourceEntry::shared_tree(Addr::new(10, 0, 0, 9))],
                prunes: vec![SourceEntry::source_on_rp_tree(Addr::new(10, 0, 7, 10))],
            }],
        });
        let line = describe_packet(&wrap(&msg));
        assert!(line.contains("PIM Join/Prune"), "{line}");
        assert!(line.contains("join={*,239.1.0.1}"), "{line}");
        assert!(line.contains("prune={10.0.7.10,239.1.0.1}rpt"), "{line}");
    }

    #[test]
    fn register_renders_payload_size() {
        let msg = Message::PimRegister(Register {
            group: Group::test(2),
            source: Addr::new(10, 0, 1, 10),
            payload: vec![0; 48],
        });
        let line = describe_packet(&wrap(&msg));
        assert!(line.contains("PIM Register"), "{line}");
        assert!(line.contains("48 data bytes"), "{line}");
    }

    #[test]
    fn data_packets_render() {
        let pkt = Header {
            proto: Protocol::Data,
            ttl: 30,
            src: Addr::new(10, 0, 1, 10),
            dst: Group::test(1).addr(),
        }
        .encap(&[1, 2, 3]);
        let line = describe_packet(&pkt);
        assert!(line.contains("DATA 3 bytes"), "{line}");
        assert!(line.contains("ttl=30"), "{line}");
    }

    #[test]
    fn corrupt_packets_never_panic() {
        assert!(describe_packet(&[]).starts_with("corrupt"));
        assert!(describe_packet(&[1, 2, 3]).starts_with("corrupt"));
        // Valid header, garbage payload.
        let pkt = Header {
            proto: Protocol::Igmp,
            ttl: 1,
            src: Addr::new(10, 0, 0, 1),
            dst: Addr::ALL_PIM_ROUTERS,
        }
        .encap(&[0xFF; 9]);
        let line = describe_packet(&pkt);
        assert!(line.contains("corrupt"), "{line}");
    }
}
