//! Wall-clock and event-count attribution per region × event kind.
//!
//! The ROADMAP's scale item asks for profiling that shows "where the
//! event loop bends" before the node-count sweeps grow further. A
//! [`SimProfile`] answers that: for each region it separates delivery
//! dispatch from timer dispatch (count and nanoseconds each, plus stale
//! heap entries skipped), and at the world level it counts lock-step
//! windows and the time spent in the serial barrier (mail routing +
//! telemetry flush). Comparing a region's dispatch time against the
//! barrier time tells you whether a bigger `--threads` can help or the
//! serial fraction already dominates.
//!
//! Profiling is opt-in ([`crate::World::enable_profile`]) and purely
//! observational: wall-clock readings never feed back into the
//! simulation, so event order and every deterministic output are
//! identical with profiling on or off. Event *counts* in the profile
//! are deterministic; the nanosecond attributions are host wall-clock
//! and differ run to run — render them, never fingerprint them.

/// Attribution shard for one region: how many events of each kind its
/// window loop dispatched and how long the handlers took.
#[derive(Clone, Debug, Default)]
pub struct RegionProfile {
    /// Region id this shard belongs to.
    pub region: u32,
    /// Packet deliveries dispatched (`Event::Deliver`).
    pub deliver_events: u64,
    /// Wall-clock nanoseconds spent inside delivery handlers.
    pub deliver_nanos: u64,
    /// Timer firings dispatched (`Event::Timer`).
    pub timer_events: u64,
    /// Wall-clock nanoseconds spent inside timer handlers.
    pub timer_nanos: u64,
    /// Cancelled heap entries popped and skipped without dispatch.
    pub stale_events: u64,
}

impl RegionProfile {
    /// Fresh shard for region `region`.
    pub fn new(region: u32) -> Self {
        RegionProfile {
            region,
            ..RegionProfile::default()
        }
    }

    /// Total events dispatched by this region (deliveries + timers).
    pub fn events(&self) -> u64 {
        self.deliver_events + self.timer_events
    }

    /// Total nanoseconds spent in this region's handlers.
    pub fn nanos(&self) -> u64 {
        self.deliver_nanos + self.timer_nanos
    }
}

/// Whole-world attribution: per-region shards plus the serial barrier.
#[derive(Clone, Debug, Default)]
pub struct SimProfile {
    /// Per-region shards, in region-id order.
    pub regions: Vec<RegionProfile>,
    /// Lock-step windows executed.
    pub windows: u64,
    /// Wall-clock nanoseconds in the serial barrier (mail routing and
    /// telemetry flush between windows).
    pub barrier_nanos: u64,
    /// Barrier-context dispatches (scripted events, restarts) that run
    /// outside any region's window loop.
    pub script_dispatches: u64,
}

impl SimProfile {
    /// Total events dispatched across all regions.
    pub fn events(&self) -> u64 {
        self.regions.iter().map(RegionProfile::events).sum()
    }

    /// Total nanoseconds across all regions' handlers.
    pub fn handler_nanos(&self) -> u64 {
        self.regions.iter().map(RegionProfile::nanos).sum()
    }

    /// Serial fraction: barrier time over barrier + handler time, in
    /// percent. The Amdahl ceiling on what more threads can buy.
    pub fn serial_pct(&self) -> f64 {
        let total = self.barrier_nanos + self.handler_nanos();
        if total == 0 {
            return 0.0;
        }
        self.barrier_nanos as f64 * 100.0 / total as f64
    }

    /// Human-readable table. Nanosecond columns are wall-clock and vary
    /// run to run; event counts are deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("region  deliver-ev  deliver-us  timer-ev  timer-us  stale\n");
        for r in &self.regions {
            out.push_str(&format!(
                "r{:<6} {:>10} {:>11} {:>9} {:>9} {:>6}\n",
                r.region,
                r.deliver_events,
                r.deliver_nanos / 1_000,
                r.timer_events,
                r.timer_nanos / 1_000,
                r.stale_events,
            ));
        }
        out.push_str(&format!(
            "windows={} barrier-us={} script-dispatches={} serial={:.1}%\n",
            self.windows,
            self.barrier_nanos / 1_000,
            self.script_dispatches,
            self.serial_pct(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_regions_and_serial_fraction() {
        let prof = SimProfile {
            regions: vec![
                RegionProfile {
                    region: 0,
                    deliver_events: 10,
                    deliver_nanos: 30_000,
                    timer_events: 4,
                    timer_nanos: 10_000,
                    stale_events: 1,
                },
                RegionProfile::new(1),
            ],
            windows: 7,
            barrier_nanos: 40_000,
            script_dispatches: 3,
        };
        assert_eq!(prof.events(), 14);
        assert_eq!(prof.handler_nanos(), 40_000);
        assert!((prof.serial_pct() - 50.0).abs() < 1e-9);
        let text = prof.render();
        assert!(text.contains("r0"));
        assert!(text.contains("windows=7"));
        assert!(text.contains("serial=50.0%"));
    }

    #[test]
    fn empty_profile_renders_without_dividing_by_zero() {
        let prof = SimProfile::default();
        assert_eq!(prof.serial_pct(), 0.0);
        assert!(prof.render().contains("windows=0"));
    }
}
