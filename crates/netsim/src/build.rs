//! Instantiating a simulation world from a [`graph::Graph`] topology.
//!
//! Router constructors need to know their interfaces (neighbor addresses,
//! delays, metrics) *before* the world wires the links up, so this module
//! first computes a deterministic [`Topology`] plan from the graph — edge
//! `k` of the graph becomes link `k` of the world, and a node's interfaces
//! are numbered in the order its edges appear in the graph — and then
//! builds the world from it.

use crate::time::Duration;
use crate::world::{IfaceId, LinkId, Node, NodeIdx, World};
use graph::{EdgeId, Graph, NodeId};
use wire::Addr;

/// The canonical unicast address of the router at graph node `n`:
/// `10.hi.lo.1`.
pub fn router_addr(n: NodeId) -> Addr {
    let i = n.0;
    assert!(i < 0x10000, "node id out of the 10.x.y.1 plan");
    Addr::new(10, (i >> 8) as u8, (i & 0xFF) as u8, 1)
}

/// The canonical address of host number `k` attached to router `n`:
/// `10.hi.lo.(10+k)`.
pub fn host_addr(n: NodeId, k: u8) -> Addr {
    let i = n.0;
    assert!(i < 0x10000, "node id out of the 10.x.y plan");
    assert!(k < 245, "host index out of range");
    Addr::new(10, (i >> 8) as u8, (i & 0xFF) as u8, 10 + k)
}

/// Reverse of [`router_addr`]: the graph node a router address denotes.
pub fn node_of_addr(addr: Addr) -> Option<NodeId> {
    let [ten, hi, lo, last] = addr.to_bytes();
    (ten == 10 && last == 1).then_some(NodeId(((hi as u32) << 8) | lo as u32))
}

/// One planned router interface.
#[derive(Clone, Copy, Debug)]
pub struct IfacePlan {
    /// The interface id the world will assign.
    pub iface: IfaceId,
    /// The graph edge this interface attaches to.
    pub edge: EdgeId,
    /// The neighbor router on the other end.
    pub neighbor: NodeId,
    /// The neighbor's unicast address.
    pub neighbor_addr: Addr,
    /// One-way propagation delay of the link.
    pub delay: Duration,
    /// Routing metric of the link (equal to its delay, so unicast shortest
    /// paths match the graph's shortest paths).
    pub metric: u32,
}

/// The planned identity and interfaces of one router.
#[derive(Clone, Debug)]
pub struct NodePlan {
    /// The graph node.
    pub node: NodeId,
    /// The router's unicast address.
    pub addr: Addr,
    /// Interfaces, in world assignment order.
    pub ifaces: Vec<IfacePlan>,
}

/// A deterministic plan mapping a graph onto a simulation world.
#[derive(Clone, Debug)]
pub struct Topology {
    plans: Vec<NodePlan>,
}

impl Topology {
    /// Plan a world for `g`: node `i` of the graph becomes world node `i`,
    /// edge `k` becomes link `k`, and interface numbering follows edge
    /// order.
    pub fn from_graph(g: &Graph) -> Topology {
        let mut plans: Vec<NodePlan> = g
            .nodes()
            .map(|n| NodePlan {
                node: n,
                addr: router_addr(n),
                ifaces: Vec::new(),
            })
            .collect();
        for (eid, edge) in g.edges() {
            for (me, other) in [(edge.a, edge.b), (edge.b, edge.a)] {
                let plan = &mut plans[me.index()];
                plan.ifaces.push(IfacePlan {
                    iface: IfaceId(plan.ifaces.len() as u32),
                    edge: eid,
                    neighbor: other,
                    neighbor_addr: router_addr(other),
                    delay: Duration(edge.weight),
                    metric: edge.weight as u32,
                });
            }
        }
        Topology { plans }
    }

    /// The per-router plans, indexed by graph node.
    pub fn plans(&self) -> &[NodePlan] {
        &self.plans
    }

    /// The plan for one router.
    pub fn plan(&self, n: NodeId) -> &NodePlan {
        &self.plans[n.index()]
    }

    /// Explicit region assignment for [`World::set_partition`]: one region
    /// id per planned router, chosen by `f` keyed on the graph node. An
    /// override for when domain knowledge (an AS map, a continent split)
    /// beats the [`crate::partition::auto_partition`] heuristic — the
    /// world's determinism contract makes every assignment byte-identical,
    /// so this is purely a performance knob. Callers that add more nodes
    /// after [`build_world`](Topology::build_world) (attached hosts) must
    /// extend the returned vector to cover them, typically placing each
    /// host in its router's region so the host LAN never crosses a cut.
    pub fn regions_by(&self, f: impl Fn(NodeId) -> u32) -> Vec<u32> {
        self.plans.iter().map(|p| f(p.node)).collect()
    }

    /// Build a world: `make` constructs each router from its plan. Returns
    /// the world and the link ids in graph-edge order.
    ///
    /// World node indices equal graph node indices.
    pub fn build_world(
        &self,
        g: &Graph,
        seed: u64,
        mut make: impl FnMut(&NodePlan) -> Box<dyn Node>,
    ) -> (World, Vec<LinkId>) {
        let mut w = World::new(seed);
        for plan in &self.plans {
            let idx = w.add_node(make(plan));
            debug_assert_eq!(idx.0, plan.node.index());
        }
        let mut links = Vec::with_capacity(g.edge_count());
        for (_eid, edge) in g.edges() {
            let (l, ia, ib) = w.add_p2p(
                NodeIdx(edge.a.index()),
                NodeIdx(edge.b.index()),
                Duration(edge.weight),
            );
            // The plan promised interface numbers in edge order; verify.
            debug_assert_eq!(
                ia,
                self.plans[edge.a.index()]
                    .ifaces
                    .iter()
                    .find(|p| p.edge.index() == links.len())
                    .expect("planned iface")
                    .iface
            );
            debug_assert_eq!(
                ib,
                self.plans[edge.b.index()]
                    .ifaces
                    .iter()
                    .find(|p| p.edge.index() == links.len())
                    .expect("planned iface")
                    .iface
            );
            links.push(l);
        }
        (w, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Ctx;
    use std::any::Any;

    struct Sink;
    impl Node for Sink {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _iface: IfaceId, _p: &[u8]) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 2);
        g.add_edge(NodeId(1), NodeId(2), 3);
        g.add_edge(NodeId(0), NodeId(2), 4);
        g
    }

    #[test]
    fn addresses() {
        assert_eq!(router_addr(NodeId(0)).to_string(), "10.0.0.1");
        assert_eq!(router_addr(NodeId(513)).to_string(), "10.2.1.1");
        assert_eq!(host_addr(NodeId(3), 2).to_string(), "10.0.3.12");
        assert_eq!(node_of_addr(router_addr(NodeId(513))), Some(NodeId(513)));
        assert_eq!(node_of_addr(host_addr(NodeId(3), 0)), None);
        assert_eq!(node_of_addr(Addr::new(11, 0, 0, 1)), None);
    }

    #[test]
    fn plan_iface_numbering_follows_edge_order() {
        let g = triangle();
        let t = Topology::from_graph(&g);
        let p0 = t.plan(NodeId(0));
        assert_eq!(p0.ifaces.len(), 2);
        assert_eq!(p0.ifaces[0].neighbor, NodeId(1)); // edge 0
        assert_eq!(p0.ifaces[0].iface, IfaceId(0));
        assert_eq!(p0.ifaces[1].neighbor, NodeId(2)); // edge 2
        assert_eq!(p0.ifaces[1].iface, IfaceId(1));
        assert_eq!(p0.ifaces[1].delay, Duration(4));
        let p1 = t.plan(NodeId(1));
        assert_eq!(p1.ifaces[0].neighbor, NodeId(0));
        assert_eq!(p1.ifaces[1].neighbor, NodeId(2));
    }

    #[test]
    fn world_matches_plan() {
        let g = triangle();
        let t = Topology::from_graph(&g);
        let (w, links) = t.build_world(&g, 0, |_| Box::new(Sink));
        assert_eq!(w.node_count(), 3);
        assert_eq!(links.len(), 3);
        assert_eq!(w.link(links[1]).delay, Duration(3));
    }

    #[test]
    fn regions_by_overrides_the_partition() {
        let g = triangle();
        let t = Topology::from_graph(&g);
        let (mut w, _) = t.build_world(&g, 0, |_| Box::new(Sink));
        let regions = t.regions_by(|n| if n.index() < 2 { 0 } else { 1 });
        assert_eq!(regions, vec![0, 0, 1]);
        w.set_partition(&regions);
        assert_eq!(w.region_count(), 2);
        // Both cross-region links (edges 1 and 2, delays 3 and 4) feed the
        // conservative lookahead; the minimum wins.
        w.start();
        assert_eq!(w.cross_region_lookahead(), Some(Duration(3)));
    }
}
