//! §2 "Robustness" and §3.4 soft state: the protocol must "gracefully
//! adapt to routing changes", recover lost control messages at the next
//! periodic refresh, and survive RP failure.

use graph::{Graph, NodeId};
use integration_tests::{build_net, diamond, join_at, send_at, seqs, Substrate};
use netsim::{LinkId, NodeIdx, SimTime};
use pim::{PimConfig, PimRouter};
use wire::Group;

fn group() -> Group {
    Group::test(1)
}

/// Control-message loss: with 20% loss on every link, soft-state refresh
/// must still converge the tree and deliver steady-state data. (This is
/// the paper's footnote-4 argument for periodic refresh over explicit
/// acks: "lost packets will be recovered from at the next periodic
/// refresh time", §3.4.)
#[test]
fn soft_state_survives_control_loss() {
    let g = diamond();
    let mut net = build_net(
        &g,
        group(),
        &[NodeId(2)],
        &[NodeId(0), NodeId(3)],
        Substrate::Oracle,
        PimConfig::default(),
        1234,
    );
    // Lossy control plane on the two tree links (router-router links are
    // LinkId 0..4 = graph edges).
    for l in 0..4 {
        net.world.set_link_loss(LinkId(l), 0.2);
    }
    let (receiver, _) = net.hosts[0];
    let (sender, s_addr) = net.hosts[1];
    join_at(&mut net.world, receiver, group(), 50);
    // A long steady stream; early packets may die to loss, but the tree
    // must hold and most packets arrive.
    send_at(&mut net.world, sender, group(), 600, 60, 30);
    net.world.run_until(SimTime(3500));
    let got = seqs(&net.world, receiver, s_addr, group());
    assert!(
        got.len() >= 40,
        "soft state must keep the tree alive through 20% loss; got {} of 60",
        got.len()
    );
    // The tree state itself must be intact at the end.
    let r0: &PimRouter = net.world.node(NodeIdx(0));
    assert!(r0
        .engine()
        .group_state(group())
        .and_then(|gs| gs.star.as_ref())
        .is_some());
}

/// §3.8: a link on the distribution tree fails; unicast routing (DV)
/// reconverges; PIM joins on the new path and prunes the old, and data
/// keeps flowing.
#[test]
fn link_failure_reroutes_tree() {
    // 0 -- 1 -- 2(RP) with a backup path 0 -- 3 -- 2.
    let mut g = Graph::with_nodes(4);
    g.add_edge(NodeId(0), NodeId(1), 1); // e0 (primary)
    g.add_edge(NodeId(1), NodeId(2), 1); // e1
    g.add_edge(NodeId(0), NodeId(3), 2); // e2 (backup)
    g.add_edge(NodeId(3), NodeId(2), 2); // e3
    let mut net = build_net(
        &g,
        group(),
        &[NodeId(2)],
        &[NodeId(0), NodeId(2)],
        Substrate::DistanceVector,
        PimConfig::shared_tree_only(),
        77,
    );
    let (receiver, _) = net.hosts[0];
    let (sender, s_addr) = net.hosts[1]; // sender sits at the RP's site
    join_at(&mut net.world, receiver, group(), 400);
    send_at(&mut net.world, sender, group(), 500, 80, 40);
    // Cut the primary path mid-stream.
    net.world
        .at(SimTime(1000), |w| w.set_link_up(LinkId(0), false));
    net.world.run_until(SimTime(4200));

    let got = seqs(&net.world, receiver, s_addr, group());
    // Pre-failure packets all arrive; post-reconvergence packets arrive;
    // only the DV detection window (route_timeout = 180) may lose some.
    let first_window: Vec<u64> = got.iter().copied().filter(|&s| s < 12).collect();
    assert_eq!(
        first_window,
        (0..12).collect::<Vec<u64>>(),
        "pre-failure loss"
    );
    let late: Vec<u64> = got.iter().copied().filter(|&s| s >= 40).collect();
    assert_eq!(
        late,
        (40..80).collect::<Vec<u64>>(),
        "post-reconvergence packets must all arrive over the backup path"
    );
    // The DR's (*,G) iif must now point at the backup interface (toward
    // node 3 — iface 1 of node 0).
    let r0: &PimRouter = net.world.node(NodeIdx(0));
    let star_iif = r0
        .engine()
        .group_state(group())
        .and_then(|gs| gs.star.as_ref())
        .and_then(|s| s.iif);
    assert_eq!(
        star_iif,
        Some(netsim::IfaceId(1)),
        "§3.8 rerouting must have happened"
    );
}

/// Membership churn: members come and go; state follows (soft-state
/// expiry upstream), and a rejoining member resumes reception.
#[test]
fn membership_churn() {
    let g = diamond();
    let mut net = build_net(
        &g,
        group(),
        &[NodeId(2)],
        &[NodeId(0), NodeId(3)],
        Substrate::Oracle,
        PimConfig::shared_tree_only(),
        5,
    );
    let (receiver, _) = net.hosts[0];
    let (sender, s_addr) = net.hosts[1];
    join_at(&mut net.world, receiver, group(), 20);
    send_at(&mut net.world, sender, group(), 100, 120, 30); // through t=3670
                                                            // Leave at t=900 (silent), rejoin at t=2400.
    net.world.at(SimTime(900), move |w| {
        w.node_mut::<igmp::HostNode>(receiver).leave(group());
    });
    join_at(&mut net.world, receiver, group(), 2400);
    net.world.run_until(SimTime(4400));

    let got = seqs(&net.world, receiver, s_addr, group());
    // Early packets arrive (joined), then a gap (left; membership expires
    // after the IGMP timeout ≈ 280t), then reception resumes after the
    // rejoin.
    assert!(got.contains(&0), "joined phase must deliver");
    let gap_missing = (45u64..70).filter(|s| !got.contains(s)).count();
    assert!(
        gap_missing > 15,
        "after leaving, most packets in t≈[1450,2200] must NOT arrive (missing {gap_missing})"
    );
    let resumed: Vec<u64> = got.iter().copied().filter(|&s| s >= 85).collect();
    assert_eq!(
        resumed,
        (85..120).collect::<Vec<u64>>(),
        "after rejoining, delivery must fully resume"
    );
}

/// RP failure with an alternate (§3.9), driven through the public API
/// (this is the example scenario as a regression test, over DV).
#[test]
fn rp_failover_restores_shared_tree() {
    let mut g = Graph::with_nodes(5);
    g.add_edge(NodeId(0), NodeId(1), 1);
    g.add_edge(NodeId(1), NodeId(2), 1); // to RP#1
    g.add_edge(NodeId(1), NodeId(3), 1); // to RP#2
    g.add_edge(NodeId(3), NodeId(4), 1);
    g.add_edge(NodeId(2), NodeId(4), 1);
    let mut net = build_net(
        &g,
        group(),
        &[NodeId(2), NodeId(3)],
        &[NodeId(0), NodeId(4)],
        Substrate::DistanceVector,
        // Shared-tree only: the receiver must depend on the RP, so the
        // failover is load-bearing (with SPTs the receiver would dodge
        // the dead RP entirely).
        PimConfig::shared_tree_only(),
        3,
    );
    let (receiver, _) = net.hosts[0];
    let (sender, s_addr) = net.hosts[1];
    join_at(&mut net.world, receiver, group(), 400);
    send_at(&mut net.world, sender, group(), 500, 80, 40);
    net.world.at(SimTime(700), |w| {
        w.set_link_up(LinkId(1), false);
        w.set_link_up(LinkId(4), false);
    });
    net.world.run_until(SimTime(4200));

    let r0: &PimRouter = net.world.node(NodeIdx(0));
    let gs = r0.engine().group_state(group()).expect("state");
    assert_eq!(
        gs.star.as_ref().expect("star").key,
        netsim::router_addr(NodeId(3)),
        "must have failed over to RP#2"
    );
    let got = seqs(&net.world, receiver, s_addr, group());
    let late: Vec<u64> = got.iter().copied().filter(|&s| s >= 60).collect();
    assert_eq!(
        late,
        (60..80).collect::<Vec<u64>>(),
        "delivery must fully resume through the alternate RP"
    );
}

/// The §3.9 failover is *observable*: a flight recorder attached to the
/// same scenario records the receiver-DR's `rp-failover` transition plus
/// the surrounding entry churn (the EXPERIMENTS.md OBS excerpt is this
/// test's recorder dump).
#[test]
fn rp_failover_appears_in_flight_recorder() {
    use std::sync::{Arc, Mutex};
    use telemetry::{FlightRecorder, SharedSink};

    let mut g = Graph::with_nodes(5);
    g.add_edge(NodeId(0), NodeId(1), 1);
    g.add_edge(NodeId(1), NodeId(2), 1); // to RP#1
    g.add_edge(NodeId(1), NodeId(3), 1); // to RP#2
    g.add_edge(NodeId(3), NodeId(4), 1);
    g.add_edge(NodeId(2), NodeId(4), 1);
    let mut net = build_net(
        &g,
        group(),
        &[NodeId(2), NodeId(3)],
        &[NodeId(0), NodeId(4)],
        Substrate::DistanceVector,
        PimConfig::shared_tree_only(),
        3,
    );
    // Large ring: this run is long, and the excerpt of interest (the
    // failover at t≈1000) must survive 3000 ticks of steady-state
    // chatter that follows it.
    let rec = Arc::new(Mutex::new(FlightRecorder::new(8192)));
    let sink: SharedSink = rec.clone();
    net.world.set_telemetry(sink);
    let (receiver, _) = net.hosts[0];
    let (sender, _) = net.hosts[1];
    join_at(&mut net.world, receiver, group(), 400);
    send_at(&mut net.world, sender, group(), 500, 80, 40);
    net.world.at(SimTime(700), |w| {
        w.set_link_up(LinkId(1), false);
        w.set_link_up(LinkId(4), false);
    });
    net.world.run_until(SimTime(4200));

    // The receiver's DR (r0) must have recorded the failover from RP#1
    // (10.0.2.1) to RP#2 (10.0.3.1), and its (*,G) entry churn around it.
    let dump = rec.lock().unwrap().dump(0);
    let failover = dump
        .iter()
        .position(|l| l.contains("rp-failover group=239.1.0.1 from=10.0.2.1 to=10.0.3.1"))
        .expect("r0's flight recorder must contain the rp-failover event");
    assert!(
        dump[..failover]
            .iter()
            .any(|l| l.contains("entry-created (*,239.1.0.1)")),
        "the pre-failover (*,G) creation must precede the failover in the ring"
    );
    assert!(
        dump[failover..]
            .iter()
            .any(|l| l.contains("ctrl-send pim-join-prune")),
        "the failover must be followed by a join toward the new RP"
    );
}

/// §2 robustness, taken literally: the RP *router* crashes losing all of
/// its volatile state, then restarts. The source's DR must resume
/// registering (its periodic register probe covers the case where it was
/// already forwarding natively), the receivers' DRs must rebuild the
/// (*,G) shared tree at the restarted RP via their periodic refreshes,
/// and delivery must fully resume — no operator action, pure soft state.
fn rp_crash_and_restart(substrate: Substrate, seed: u64) {
    // 0 — 1 — 2(RP) — 3, receiver behind 0, sender behind 3.
    let mut g = Graph::with_nodes(4);
    g.add_edge(NodeId(0), NodeId(1), 1);
    g.add_edge(NodeId(1), NodeId(2), 1);
    g.add_edge(NodeId(2), NodeId(3), 1);
    let mut net = build_net(
        &g,
        group(),
        &[NodeId(2)],
        &[NodeId(0), NodeId(3)],
        substrate,
        // Shared-tree only: delivery genuinely depends on the RP holding
        // (*,G) and (S,G) state, so the rebuild is load-bearing.
        PimConfig::shared_tree_only(),
        seed,
    );
    let (receiver, _) = net.hosts[0];
    let (sender, s_addr) = net.hosts[1];
    join_at(&mut net.world, receiver, group(), 50);
    send_at(&mut net.world, sender, group(), 400, 120, 30); // through t=3970

    // Crash the RP mid-stream; its engine, unicast and IGMP state are
    // erased (NVRAM model: only static config survives). Restart shortly
    // after.
    net.world.at(SimTime(900), |w| w.crash_node(NodeIdx(2)));
    net.world.at(SimTime(1100), |w| w.restart_node(NodeIdx(2)));
    // The register counters are observability, not protocol state — they
    // survive the crash — so snapshot just before the restart to count
    // post-restart registers only.
    net.world.run_until(SimTime(1099));
    let regs_before = {
        let rp: &PimRouter = net.world.node(NodeIdx(2));
        rp.engine().registers_received
    };
    net.world.run_until(SimTime(4600));

    let rp: &PimRouter = net.world.node(NodeIdx(2));
    assert!(
        rp.engine().registers_received > regs_before,
        "registers must resume at the restarted RP"
    );
    let gs = rp
        .engine()
        .group_state(group())
        .expect("group state rebuilt");
    let star = gs.star.as_ref().expect("(*,G) rebuilt at the restarted RP");
    assert!(
        !star.oifs_empty(),
        "the rebuilt shared tree must have downstream receivers"
    );
    let got = seqs(&net.world, receiver, s_addr, group());
    // Early packets arrive; the crash window loses some; after the RP is
    // back and soft state has refreshed, delivery must fully resume.
    assert!(got.contains(&0), "pre-crash delivery");
    let late: Vec<u64> = got.iter().copied().filter(|&s| s >= 80).collect();
    assert_eq!(
        late,
        (80..120).collect::<Vec<u64>>(),
        "delivery must fully resume after the RP restarts"
    );
}

#[test]
fn rp_crash_and_restart_over_distance_vector() {
    rp_crash_and_restart(Substrate::DistanceVector, 21);
}

#[test]
fn rp_crash_and_restart_over_link_state() {
    rp_crash_and_restart(Substrate::LinkState, 22);
}
