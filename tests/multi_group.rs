//! Multi-group scenarios: independent groups with distinct RPs and tree
//! types coexisting on one internet (the paper's "configuration decision
//! within a multicast protocol", §1.3), plus scale/invariant checks over
//! random topologies.

use graph::gen::{random_connected, RandomGraphParams};
use graph::NodeId;
use igmp::HostNode;
use netsim::{host_addr, router_addr, Duration, NodeIdx, SimTime, Topology};
use pim::{Engine, OifKind, PimConfig, PimRouter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use unicast::OracleRib;
use wire::{Addr, Group};

/// Build a net where every router in `host_routers` gets a host; groups
/// are configured per router via `set_rp_mapping` afterwards.
fn build_multi(
    g: &graph::Graph,
    mappings: &[(Group, Vec<Addr>)],
    host_routers: &[NodeId],
    seed: u64,
) -> (netsim::World, Vec<(NodeIdx, Addr)>) {
    let topo = Topology::from_graph(g);
    let mut ribs = OracleRib::for_all(g, &topo);
    for &n in host_routers {
        let h = host_addr(n, 0);
        for (i, rib) in ribs.iter_mut().enumerate() {
            if i != n.index() {
                rib.alias_host(h, router_addr(n));
            }
        }
    }
    let mut rib_iter = ribs.into_iter();
    let (mut world, _) = topo.build_world(g, seed, |plan| {
        let mut r = PimRouter::new(
            Engine::new(plan.addr, plan.ifaces.len(), PimConfig::default()),
            Box::new(rib_iter.next().expect("rib")),
        );
        for (grp, rps) in mappings {
            r.engine_mut().set_rp_mapping(*grp, rps.clone());
        }
        Box::new(r)
    });
    let mut hosts = Vec::new();
    for &n in host_routers {
        let ha = host_addr(n, 0);
        let hi = world.add_node(Box::new(HostNode::new(ha)));
        let (_l, ifs) = world.add_lan(&[NodeIdx(n.index()), hi], Duration(1));
        world
            .node_mut::<PimRouter>(NodeIdx(n.index()))
            .attach_host_lan(ifs[0], &[ha]);
        hosts.push((hi, ha));
    }
    (world, hosts)
}

fn join(world: &mut netsim::World, host: NodeIdx, grp: Group, at: u64) {
    world.at(SimTime(at), move |w| {
        w.call_node(host, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host")
                .join(ctx, grp);
        });
    });
}

fn send(world: &mut netsim::World, host: NodeIdx, grp: Group, start: u64, count: u64, gap: u64) {
    for k in 0..count {
        world.at(SimTime(start + k * gap), move |w| {
            w.call_node(host, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .send_data(ctx, grp);
            });
        });
    }
}

#[test]
fn independent_groups_do_not_interfere() {
    let mut rng = StdRng::seed_from_u64(21);
    let g = random_connected(
        &RandomGraphParams {
            nodes: 20,
            avg_degree: 3.5,
            delay_range: (1, 5),
        },
        &mut rng,
    );
    let ga = Group::test(10);
    let gb = Group::test(11);
    let rp_a = router_addr(NodeId(0));
    let rp_b = router_addr(NodeId(19));
    let host_routers = [NodeId(2), NodeId(5), NodeId(11), NodeId(17)];
    let (mut world, hosts) =
        build_multi(&g, &[(ga, vec![rp_a]), (gb, vec![rp_b])], &host_routers, 13);
    // hosts[0], hosts[1] are group A members; hosts[2], hosts[3] group B.
    join(&mut world, hosts[0].0, ga, 10);
    join(&mut world, hosts[1].0, ga, 15);
    join(&mut world, hosts[2].0, gb, 12);
    join(&mut world, hosts[3].0, gb, 18);
    // hosts[1] sends to A; hosts[3] sends to B, overlapping in time.
    send(&mut world, hosts[1].0, ga, 300, 25, 20);
    send(&mut world, hosts[3].0, gb, 305, 25, 20);
    world.run_until(SimTime(1600));

    let h0: &HostNode = world.node(hosts[0].0);
    assert_eq!(h0.seqs_from(hosts[1].1, ga), (0..25).collect::<Vec<u64>>());
    assert!(
        h0.seqs_from(hosts[3].1, gb).is_empty(),
        "no cross-group leak"
    );
    let h2: &HostNode = world.node(hosts[2].0);
    assert_eq!(h2.seqs_from(hosts[3].1, gb), (0..25).collect::<Vec<u64>>());
    assert!(
        h2.seqs_from(hosts[1].1, ga).is_empty(),
        "no cross-group leak"
    );
}

#[test]
fn one_host_in_many_groups() {
    let mut rng = StdRng::seed_from_u64(33);
    let g = random_connected(
        &RandomGraphParams {
            nodes: 15,
            avg_degree: 3.0,
            delay_range: (1, 4),
        },
        &mut rng,
    );
    let groups: Vec<Group> = (20..26).map(Group::test).collect();
    let rp = router_addr(NodeId(7));
    let mappings: Vec<(Group, Vec<Addr>)> = groups.iter().map(|&g| (g, vec![rp])).collect();
    let host_routers = [NodeId(1), NodeId(13)];
    let (mut world, hosts) = build_multi(&g, &mappings, &host_routers, 14);
    // Host 0 joins all six groups; host 1 sends one packet train to each.
    for (i, &grp) in groups.iter().enumerate() {
        join(&mut world, hosts[0].0, grp, 10 + i as u64 * 3);
        send(&mut world, hosts[1].0, grp, 300 + i as u64 * 11, 8, 30);
    }
    world.run_until(SimTime(1800));
    let h: &HostNode = world.node(hosts[0].0);
    for &grp in &groups {
        // Host sequence numbers are global per sender (interleaved across
        // its groups), so assert count and monotonicity, not exact values.
        // A packet may arrive twice when the SPT switchover window (§2.8:
        // data flows down both the shared tree and the new SPT until the
        // RPT prune lands) overlaps the train, so count distinct seqs and
        // allow adjacent duplicates.
        let got = h.seqs_from(hosts[1].1, grp);
        assert!(
            got.windows(2).all(|w| w[1] >= w[0]),
            "out of order: {got:?}"
        );
        let mut distinct = got.clone();
        distinct.dedup();
        assert_eq!(distinct.len(), 8, "group {grp} incomplete: {got:?}");
    }
    // The DR holds one (*,G) per group (plus per-source SPT state).
    let dr: &PimRouter = world.node(NodeIdx(1));
    let stars = groups
        .iter()
        .filter(|&&grp| {
            dr.engine()
                .group_state(grp)
                .and_then(|gs| gs.star.as_ref())
                .is_some()
        })
        .count();
    assert_eq!(stars, 6);
}

/// Engine-level invariants hold across a messy random scenario:
/// * no entry has its iif in its oif list (forwarding-loop guard);
/// * (S,G) negative caches exist only alongside a (*,G);
/// * every oif of every entry is a real interface.
#[test]
fn state_invariants_after_random_scenario() {
    for seed in [2u64, 15, 44] {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_connected(
            &RandomGraphParams {
                nodes: 25,
                avg_degree: 4.0,
                delay_range: (1, 6),
            },
            &mut rng,
        );
        let grp = Group::test(1);
        let rp = router_addr(NodeId(3));
        let host_routers: Vec<NodeId> =
            vec![NodeId(5), NodeId(9), NodeId(14), NodeId(20), NodeId(24)];
        let (mut world, hosts) = build_multi(&g, &[(grp, vec![rp])], &host_routers, seed);
        for (i, &(h, _)) in hosts.iter().enumerate() {
            join(&mut world, h, grp, 10 + i as u64 * 9);
        }
        // Everyone sends; members churn.
        for &(h, _) in &hosts {
            send(&mut world, h, grp, 400, 15, 35);
        }
        let leaver = hosts[2].0;
        world.at(SimTime(700), move |w| {
            w.node_mut::<HostNode>(leaver).leave(grp);
        });
        world.run_until(SimTime(2500));

        for i in 0..g.node_count() {
            let r: &PimRouter = world.node(NodeIdx(i));
            let Some(gs) = r.engine().group_state(grp) else {
                continue;
            };
            if let Some(star) = &gs.star {
                if let Some(iif) = star.iif {
                    assert!(
                        !star.oifs.contains_key(&iif),
                        "router {i}: (*,G) iif in oifs"
                    );
                }
            }
            for (s, e) in &gs.sources {
                if let Some(iif) = e.iif {
                    // LocalMembers oifs may legitimately coincide with a
                    // host-side iif only for local sources.
                    if !e.local_source {
                        assert!(
                            !e.oifs.contains_key(&iif),
                            "router {i}: ({s},G) iif {iif:?} in oifs {:?}",
                            e.oifs
                        );
                    }
                }
                if e.is_negative() {
                    assert!(
                        gs.star.is_some(),
                        "router {i}: negative cache without (*,G) (footnote 13)"
                    );
                }
                for (&oif, o) in &e.oifs {
                    assert!(
                        (oif.index()) < r.engine().iface_count(),
                        "router {i}: oif {oif:?} out of range"
                    );
                    let _ = o;
                }
            }
        }
        // Sanity: members that stayed got full streams from all senders.
        for (i, &(h, _)) in hosts.iter().enumerate() {
            if i == 2 {
                continue;
            }
            let host: &HostNode = world.node(h);
            for (j, &(_, s_addr)) in hosts.iter().enumerate() {
                if i == j {
                    continue;
                }
                let got = host.seqs_from(s_addr, grp);
                assert!(
                    got.len() >= 14,
                    "seed {seed}: member {i} got only {} of 15 from sender {j}",
                    got.len()
                );
            }
        }
    }
}

/// The OifKind bookkeeping: local-member oifs never expire via PIM timers
/// while the member stays, and joined oifs persist only under refresh.
#[test]
fn oif_kinds_behave() {
    let mut rng = StdRng::seed_from_u64(88);
    let g = random_connected(
        &RandomGraphParams {
            nodes: 10,
            avg_degree: 3.0,
            delay_range: (1, 3),
        },
        &mut rng,
    );
    let grp = Group::test(1);
    let rp = router_addr(NodeId(0));
    let (mut world, hosts) = build_multi(&g, &[(grp, vec![rp])], &[NodeId(4)], 7);
    join(&mut world, hosts[0].0, grp, 10);
    world.run_until(SimTime(2000));
    let dr: &PimRouter = world.node(NodeIdx(4));
    let star = dr
        .engine()
        .group_state(grp)
        .and_then(|gs| gs.star.as_ref())
        .expect("star survives under IGMP refresh");
    let kinds: Vec<OifKind> = star.oifs.values().map(|o| o.kind).collect();
    assert!(
        kinds.contains(&OifKind::LocalMembers),
        "the member subnetwork must be a LocalMembers oif"
    );
}
