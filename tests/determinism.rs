//! Bit-for-bit reproducibility of a complete protocol run, observed
//! through the packet-capture trace (`netsim::trace`).
//!
//! The deadline-driven timer refactor made scheduling order load-bearing:
//! same-deadline events must pop in FIFO insertion order (the world's
//! heap orders by `(time, seq)`), and cancelled/rescheduled timers must
//! be skipped identically on every run. Two runs of the same seeded
//! scenario must therefore render byte-identical traces — any divergence
//! means hidden nondeterminism (hash-map iteration, RNG misuse, or a
//! broken tie-break).

use graph::NodeId;
use integration_tests::{build_net, diamond, join_at, send_at, Substrate};
use netsim::SimTime;
use pim::PimConfig;
use wire::Group;

/// Render the full capture of one diamond run (joins, data, SPT switch,
/// live unicast routing) as one string.
fn run_trace(substrate: Substrate, seed: u64) -> String {
    let g = diamond();
    let group = Group::test(1);
    let mut net = build_net(
        &g,
        group,
        &[NodeId(2)],
        &[NodeId(0), NodeId(3)],
        substrate,
        PimConfig::default(),
        seed,
    );
    net.world.enable_capture(100_000);
    let (receiver, _) = net.hosts[0];
    let (sender, _) = net.hosts[1];
    join_at(&mut net.world, receiver, group, 400);
    send_at(&mut net.world, sender, group, 800, 12, 30);
    net.world.run_until(SimTime(2200));

    let mut out = String::new();
    for rec in net.world.captured() {
        out.push_str(&format!(
            "{} link={} from={} {}\n",
            rec.at.ticks(),
            rec.link.0,
            rec.from.0,
            rec.summary
        ));
    }
    // The trace must actually contain the protocol exchange, otherwise
    // "identical" is vacuous.
    assert!(out.contains("PIM Join/Prune"), "trace captured no joins");
    assert!(out.contains("DATA"), "trace captured no data");
    out
}

#[test]
fn same_seed_runs_produce_byte_identical_traces() {
    for sub in [
        Substrate::Oracle,
        Substrate::DistanceVector,
        Substrate::LinkState,
    ] {
        let a = run_trace(sub, 42);
        let b = run_trace(sub, 42);
        assert_eq!(a, b, "{sub:?}: same seed must reproduce the exact trace");
    }
}

#[test]
fn different_seeds_may_differ_but_stay_deterministic() {
    // Different seeds shuffle IGMP report jitter; each must still be
    // self-reproducible.
    let a1 = run_trace(Substrate::DistanceVector, 7);
    let a2 = run_trace(Substrate::DistanceVector, 7);
    assert_eq!(a1, a2);
}
