//! §3.7 quantified: on a multi-access subnetwork shared by several
//! downstream routers, join suppression keeps periodic join traffic
//! near one join per refresh period — not one per router — and the
//! prune-override protocol keeps delivery seamless through member churn.

use graph::NodeId;
use igmp::HostNode;
use netsim::{host_addr, router_addr, Duration, IfaceId, NodeIdx, SimTime, World};
use pim::{Engine, PimConfig, PimRouter};
use unicast::{OracleRib, RouteEntry};
use wire::ip::{Header, Protocol};
use wire::{Addr, Group, Message};

/// Build: sender — [up = RP] ==LAN== [d0, d1, d2] each with a member host.
/// Returns (world, lan link id, member host indices, sender idx, sender addr).
fn build(n_down: usize) -> (World, netsim::LinkId, Vec<NodeIdx>, NodeIdx, Addr) {
    let group = Group::test(1);
    let a_up = router_addr(NodeId(0));
    let mut world = World::new(77);

    let rib_for = |me: Addr, routes: Vec<(Addr, u32, Addr)>| {
        let mut r = OracleRib::empty(me);
        for (dst, iface, nh) in routes {
            r.insert(
                dst,
                RouteEntry {
                    iface: IfaceId(iface),
                    next_hop: nh,
                    metric: 1,
                },
            );
        }
        r
    };

    // Upstream router (the RP) with its sender host on iface 1.
    let s_addr = host_addr(NodeId(0), 0);
    let mut up_routes = vec![];
    for d in 0..n_down {
        let a_d = router_addr(NodeId(1 + d as u32));
        up_routes.push((a_d, 0u32, a_d));
        up_routes.push((host_addr(NodeId(1 + d as u32), 0), 0, a_d));
    }
    let mut up_router = PimRouter::new(
        Engine::new(a_up, 1, PimConfig::default()),
        Box::new(rib_for(a_up, up_routes)),
    );
    up_router.engine_mut().set_rp_mapping(group, vec![a_up]);
    let up = world.add_node(Box::new(up_router));

    // Downstream routers.
    let mut downs = Vec::new();
    for d in 0..n_down {
        let a_d = router_addr(NodeId(1 + d as u32));
        let mut routes = vec![(a_up, 0u32, a_up), (s_addr, 0, a_up)];
        for other in 0..n_down {
            if other != d {
                let a_o = router_addr(NodeId(1 + other as u32));
                routes.push((a_o, 0, a_o));
                routes.push((host_addr(NodeId(1 + other as u32), 0), 0, a_o));
            }
        }
        let mut r = PimRouter::new(
            Engine::new(a_d, 1, PimConfig::default()),
            Box::new(rib_for(a_d, routes)),
        );
        r.engine_mut().set_rp_mapping(group, vec![a_up]);
        downs.push(world.add_node(Box::new(r)));
    }

    // The shared transit LAN.
    let mut attach = vec![up];
    attach.extend(downs.iter().copied());
    let (lan, lan_ifs) = world.add_lan(&attach, Duration(1));
    world
        .node_mut::<PimRouter>(up)
        .engine_mut()
        .set_lan(lan_ifs[0]);
    for (i, &d) in downs.iter().enumerate() {
        world
            .node_mut::<PimRouter>(d)
            .engine_mut()
            .set_lan(lan_ifs[i + 1]);
    }

    // Hosts: sender behind `up`, a member behind each downstream.
    let sender = world.add_node(Box::new(HostNode::new(s_addr)));
    let (_l, ifs) = world.add_lan(&[up, sender], Duration(1));
    world
        .node_mut::<PimRouter>(up)
        .attach_host_lan(ifs[0], &[s_addr]);

    let mut members = Vec::new();
    for (i, &d) in downs.iter().enumerate() {
        let ha = host_addr(NodeId(1 + i as u32), 0);
        let h = world.add_node(Box::new(HostNode::new(ha)));
        let (_l, ifs) = world.add_lan(&[d, h], Duration(1));
        world
            .node_mut::<PimRouter>(d)
            .attach_host_lan(ifs[0], &[ha]);
        members.push(h);
    }
    (world, lan, members, sender, s_addr)
}

fn count_lan_joins(world: &World) -> usize {
    world
        .captured()
        .iter()
        .filter(|r| r.summary.contains("Join/Prune") && r.summary.contains("join={*,"))
        .count()
}

#[test]
fn join_suppression_scales_sublinearly() {
    // With 3 downstream routers all wanting the same (*,G) over one LAN,
    // overheard joins suppress duplicates: the steady-state join rate on
    // the LAN approaches one per refresh period, not three.
    let group = Group::test(1);
    let (mut world, _lan, members, _sender, _s) = build(3);
    for (i, &m) in members.iter().enumerate() {
        let at = 10 + i as u64 * 3;
        world.at(SimTime(at), move |w| {
            w.call_node(m, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .join(ctx, group);
            });
        });
    }
    // Warm up the tree fully, then capture a long steady-state window.
    world.run_until(SimTime(400));
    world.enable_capture(100_000);
    world.run_until(SimTime(400 + 1200));
    let joins = count_lan_joins(&world);
    // 1200 ticks / 60-tick refresh = 20 periods. Without suppression 3
    // routers → ~60 joins; with it, near 20 (plus override slack).
    assert!(
        joins <= 32,
        "suppression must keep shared-tree joins near 1/period, saw {joins} in 20 periods"
    );
    assert!(joins >= 15, "someone must still refresh the tree ({joins})");
}

#[test]
fn suppressed_routers_still_deliver() {
    let group = Group::test(1);
    let (mut world, _lan, members, sender, s_addr) = build(3);
    for (i, &m) in members.iter().enumerate() {
        let at = 10 + i as u64 * 3;
        world.at(SimTime(at), move |w| {
            w.call_node(m, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .join(ctx, group);
            });
        });
    }
    for k in 0..30u64 {
        world.at(SimTime(500 + k * 30), move |w| {
            w.call_node(sender, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .send_data(ctx, group);
            });
        });
    }
    world.run_until(SimTime(2600));
    for (i, &m) in members.iter().enumerate() {
        let h: &HostNode = world.node(m);
        assert_eq!(
            h.seqs_from(s_addr, group),
            (0..30).collect::<Vec<u64>>(),
            "member {i} must receive everything despite join suppression"
        );
    }
    // The LAN carries each data packet ONCE (the upstream router sends one
    // copy onto the multi-access subnetwork; all three downstreams hear it).
    let up_router: &PimRouter = world.node(NodeIdx(0));
    let _ = up_router;
}

#[test]
fn data_crosses_lan_once_per_packet() {
    let group = Group::test(1);
    let (mut world, lan, members, sender, _s) = build(3);
    for (i, &m) in members.iter().enumerate() {
        let at = 10 + i as u64 * 3;
        world.at(SimTime(at), move |w| {
            w.call_node(m, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .join(ctx, group);
            });
        });
    }
    for k in 0..20u64 {
        world.at(SimTime(500 + k * 30), move |w| {
            w.call_node(sender, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .send_data(ctx, group);
            });
        });
    }
    world.run_until(SimTime(1800));
    let stats = world.counters().link(lan);
    assert_eq!(
        stats.data_pkts, 20,
        "multi-access delivery: one transmission serves all three downstream routers"
    );
}

/// Sanity helper used by the suppression test: the capture decoder and
/// the wire layer agree on what a shared-tree join looks like.
#[test]
fn capture_summary_matches_wire_semantics() {
    let msg = Message::PimJoinPrune(wire::pim::JoinPrune {
        upstream_neighbor: Addr::new(10, 0, 0, 1),
        holdtime: 180,
        groups: vec![wire::pim::GroupEntry::join(
            Group::test(1),
            wire::pim::SourceEntry::shared_tree(Addr::new(10, 0, 0, 9)),
        )],
    });
    let pkt = Header {
        proto: Protocol::Igmp,
        ttl: 1,
        src: Addr::new(10, 0, 0, 2),
        dst: Addr::ALL_PIM_ROUTERS,
    }
    .encap(&msg.encode());
    let line = netsim::trace::describe_packet(&pkt);
    assert!(line.contains("join={*,"), "{line}");
}
