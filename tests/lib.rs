//! Shared scaffolding for the cross-crate integration tests.
//!
//! The helpers build a complete PIM internet over an arbitrary graph with
//! a selectable unicast substrate (the §2 protocol-independence axis) and
//! drive a join → send → verify scenario.

use graph::{Graph, NodeId};
use igmp::HostNode;
use netsim::{host_addr, router_addr, Duration, NodeIdx, SimTime, Topology, World};
use pim::{Engine, PimConfig, PimRouter};
use unicast::dv::{DvConfig, DvEngine};
use unicast::ls::{LsConfig, LsEngine};
use unicast::OracleRib;
use wire::{Addr, Group};

/// Which unicast routing engine the routers run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Substrate {
    /// Static tables from global knowledge.
    Oracle,
    /// RIP-like distance vector.
    DistanceVector,
    /// OSPF-like link state.
    LinkState,
}

/// A built test network.
pub struct TestNet {
    /// The world.
    pub world: World,
    /// `(host node, host addr)` per entry of `host_routers`.
    pub hosts: Vec<(NodeIdx, Addr)>,
}

/// Build a PIM network over `g` with a host behind each router in
/// `host_routers`, the RP(s) at `rps`, and the chosen unicast substrate.
pub fn build_net(
    g: &Graph,
    group: Group,
    rps: &[NodeId],
    host_routers: &[NodeId],
    substrate: Substrate,
    cfg: PimConfig,
    seed: u64,
) -> TestNet {
    let topo = Topology::from_graph(g);
    let rp_addrs: Vec<Addr> = rps.iter().map(|&n| router_addr(n)).collect();

    let mut oracle = OracleRib::for_all(g, &topo);
    for &n in host_routers {
        let h = host_addr(n, 0);
        for (i, rib) in oracle.iter_mut().enumerate() {
            if i != n.index() {
                rib.alias_host(h, router_addr(n));
            }
        }
    }
    let mut oracle_iter = oracle.into_iter();

    let (mut world, _links) = topo.build_world(g, seed, |plan| {
        let unicast: Box<dyn unicast::Engine> = match substrate {
            Substrate::Oracle => Box::new(oracle_iter.next().expect("rib per plan")),
            Substrate::DistanceVector => {
                let _ = oracle_iter.next();
                Box::new(DvEngine::new(plan, DvConfig::default()))
            }
            Substrate::LinkState => {
                let _ = oracle_iter.next();
                Box::new(LsEngine::new(plan, LsConfig::default()))
            }
        };
        let mut r = PimRouter::new(Engine::new(plan.addr, plan.ifaces.len(), cfg), unicast);
        r.engine_mut().set_rp_mapping(group, rp_addrs.clone());
        Box::new(r)
    });

    let mut hosts = Vec::new();
    for &n in host_routers {
        let h_addr = host_addr(n, 0);
        let h_idx = world.add_node(Box::new(HostNode::new(h_addr)));
        let (_l, ifs) = world.add_lan(&[NodeIdx(n.index()), h_idx], Duration(1));
        world
            .node_mut::<PimRouter>(NodeIdx(n.index()))
            .attach_host_lan(ifs[0], &[h_addr]);
        hosts.push((h_idx, h_addr));
    }
    TestNet { world, hosts }
}

/// Schedule a host join.
pub fn join_at(world: &mut World, host: NodeIdx, group: Group, at: u64) {
    world.at(SimTime(at), move |w| {
        w.call_node(host, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host node")
                .join(ctx, group);
        });
    });
}

/// Schedule a packet train from a host.
pub fn send_at(world: &mut World, host: NodeIdx, group: Group, start: u64, count: u64, gap: u64) {
    for k in 0..count {
        world.at(SimTime(start + k * gap), move |w| {
            w.call_node(host, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host node")
                    .send_data(ctx, group);
            });
        });
    }
}

/// The sequence numbers `host` received from `source` on `group`.
pub fn seqs(world: &World, host: NodeIdx, source: Addr, group: Group) -> Vec<u64> {
    world.node::<HostNode>(host).seqs_from(source, group)
}

/// A standard five-node diamond used by several tests:
/// `0 -1- 1 -1- 2 -1- 3` plus a `0 -2- 3` shortcut; RP at node 2.
pub fn diamond() -> Graph {
    let mut g = Graph::with_nodes(4);
    g.add_edge(NodeId(0), NodeId(1), 1);
    g.add_edge(NodeId(1), NodeId(2), 1);
    g.add_edge(NodeId(2), NodeId(3), 1);
    g.add_edge(NodeId(0), NodeId(3), 2);
    g
}
