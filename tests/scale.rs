//! Scale and determinism of the full protocol stack: many sparse groups
//! on a 50-node internet, each with its own RP, members, and senders —
//! the paper's "wide-area internets, where many groups will be sparsely
//! represented" (§1) — plus bit-for-bit reproducibility of a complete
//! protocol run.

use bench::{run_protocol_sim, Proto, Workload};
use graph::gen::{random_connected, RandomGraphParams};
use graph::NodeId;
use mctree::GroupSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wire::Group;

fn many_group_workloads(n_groups: u32, nodes: usize, rng: &mut StdRng) -> Vec<Workload> {
    (0..n_groups)
        .map(|i| {
            let spec = GroupSpec::random(nodes, 4, 2, rng);
            Workload {
                group: Group::test(100 + i),
                members: spec.members.clone(),
                senders: spec.senders.clone(),
                rendezvous: NodeId(rng.gen_range(0..nodes as u32)),
                population: 1,
            }
        })
        .collect()
}

#[test]
fn twenty_sparse_groups_on_fifty_nodes() {
    let mut rng = StdRng::seed_from_u64(57);
    let g = random_connected(
        &RandomGraphParams {
            nodes: 50,
            avg_degree: 4.0,
            delay_range: (1, 8),
        },
        &mut rng,
    );
    let workloads = many_group_workloads(20, 50, &mut rng);
    let r = run_protocol_sim(&g, Proto::PimSpt, &workloads, 6, 1);
    // 20 groups × 2 senders × 3 other members × 6 packets = 720 expected.
    assert_eq!(r.expected_deliveries, 720);
    let rate = r.deliveries as f64 / r.expected_deliveries as f64;
    assert!(
        rate > 0.99,
        "delivery must be ≥99% across 20 concurrent groups (got {rate:.4}: {r:?})"
    );
    // Sparse-mode property at scale: the union of 20 small trees still
    // leaves the data footprint far below dense mode (which would be 100).
    assert!(
        r.data_links_used < 90,
        "20 sparse groups must not flood the whole internet ({} links)",
        r.data_links_used
    );
    assert!(r.state_entries > 0);
}

#[test]
fn shared_tree_mode_scales_with_less_state() {
    let mut rng = StdRng::seed_from_u64(51);
    let g = random_connected(
        &RandomGraphParams {
            nodes: 50,
            avg_degree: 4.0,
            delay_range: (1, 8),
        },
        &mut rng,
    );
    let workloads = many_group_workloads(12, 50, &mut rng);
    let spt = run_protocol_sim(&g, Proto::PimSpt, &workloads, 6, 1);
    let shared = run_protocol_sim(&g, Proto::PimShared, &workloads, 6, 1);
    // "Shared trees ... have less per-source overhead" (§3): with 2
    // senders per group, SPT mode holds strictly more entries.
    assert!(
        shared.state_entries < spt.state_entries,
        "shared {} !< spt {}",
        shared.state_entries,
        spt.state_entries
    );
    // Both deliver.
    assert!(shared.deliveries as f64 / shared.expected_deliveries as f64 > 0.99);
    assert!(spt.deliveries as f64 / spt.expected_deliveries as f64 > 0.99);
}

#[test]
fn full_protocol_run_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(52);
    let g = random_connected(
        &RandomGraphParams {
            nodes: 30,
            avg_degree: 3.5,
            delay_range: (1, 6),
        },
        &mut rng,
    );
    let workloads = many_group_workloads(5, 30, &mut rng);
    let runs: Vec<String> = (0..2)
        .map(|_| {
            let mut r = run_protocol_sim(&g, Proto::PimSpt, &workloads, 8, 42);
            r.run_ms = 0.0; // wall clock, legitimately varies run to run
            format!("{r:?}")
        })
        .collect();
    assert_eq!(runs[0], runs[1], "identical seed ⇒ identical SimResult");
}

#[test]
fn all_protocols_survive_many_groups() {
    let mut rng = StdRng::seed_from_u64(53);
    let g = random_connected(
        &RandomGraphParams {
            nodes: 30,
            avg_degree: 3.5,
            delay_range: (1, 5),
        },
        &mut rng,
    );
    let workloads = many_group_workloads(8, 30, &mut rng);
    for proto in [Proto::PimSpt, Proto::PimShared, Proto::Dvmrp, Proto::Cbt] {
        let r = run_protocol_sim(&g, proto, &workloads, 5, 7);
        let rate = r.deliveries as f64 / r.expected_deliveries as f64;
        assert!(
            rate > 0.98,
            "{}: delivery rate {rate:.4} across 8 groups ({r:?})",
            proto.name()
        );
    }
}
