//! The live unicast routing engines must converge to the same routes the
//! oracle computes from global knowledge — on random topologies, and
//! again after link failures. This is what makes the protocol-independence
//! tests meaningful: all three substrates present the same [`unicast::Rib`]
//! view once converged.

use graph::algo::AllPairs;
use graph::gen::{random_connected, RandomGraphParams};
use graph::{Graph, NodeId};
use integration_tests::{build_net, Substrate};
use netsim::{router_addr, NodeIdx, SimTime, Topology};
use pim::{PimConfig, PimRouter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use unicast::{OracleRib, Rib};
use wire::Group;

/// Compare every router's converged table against the oracle: same
/// reachability and same path *metric* (interfaces may differ where
/// equal-cost ties exist, but costs may not).
fn assert_converged_to_oracle(g: &Graph, world: &netsim::World) {
    let topo = Topology::from_graph(g);
    let oracles = OracleRib::for_all(g, &topo);
    for (i, oracle) in oracles.iter().enumerate() {
        let r: &PimRouter = world.node(NodeIdx(i));
        for dst in g.nodes() {
            if dst.index() == i {
                continue;
            }
            let live = r.rib().route(router_addr(dst));
            let want = oracle.route(router_addr(dst));
            match (live, want) {
                (Some(l), Some(w)) => assert_eq!(
                    l.metric, w.metric,
                    "router {i} → {dst:?}: live metric {} ≠ oracle {}",
                    l.metric, w.metric
                ),
                (l, w) => panic!("router {i} → {dst:?}: reachability mismatch {l:?} vs {w:?}"),
            }
        }
    }
}

fn random_graph(seed: u64, nodes: usize) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    random_connected(
        &RandomGraphParams {
            nodes,
            avg_degree: 3.0,
            delay_range: (1, 6),
        },
        &mut rng,
    )
}

#[test]
fn distance_vector_converges_to_shortest_paths() {
    for seed in [1u64, 7, 23] {
        let g = random_graph(seed, 14);
        let mut net = build_net(
            &g,
            Group::test(1),
            &[NodeId(0)],
            &[],
            Substrate::DistanceVector,
            PimConfig::default(),
            seed,
        );
        net.world.run_until(SimTime(1000));
        assert_converged_to_oracle(&g, &net.world);
    }
}

#[test]
fn link_state_converges_to_shortest_paths() {
    for seed in [1u64, 7, 23] {
        let g = random_graph(seed, 14);
        let mut net = build_net(
            &g,
            Group::test(1),
            &[NodeId(0)],
            &[],
            Substrate::LinkState,
            PimConfig::default(),
            seed,
        );
        net.world.run_until(SimTime(1000));
        assert_converged_to_oracle(&g, &net.world);
    }
}

#[test]
fn distance_vector_reconverges_after_failure() {
    // A ring: 0-1-2-3-4-0; cut 0-1 and routes must flip to the long way.
    let mut g = Graph::with_nodes(5);
    for i in 0..5u32 {
        g.add_edge(NodeId(i), NodeId((i + 1) % 5), 1);
    }
    let mut net = build_net(
        &g,
        Group::test(1),
        &[NodeId(0)],
        &[],
        Substrate::DistanceVector,
        PimConfig::default(),
        2,
    );
    net.world.run_until(SimTime(800));
    {
        let r0: &PimRouter = net.world.node(NodeIdx(0));
        assert_eq!(
            r0.rib()
                .route(router_addr(NodeId(1)))
                .expect("route")
                .metric,
            1
        );
    }
    net.world
        .at(SimTime(800), |w| w.set_link_up(netsim::LinkId(0), false));
    // DV detection needs route_timeout (180) + propagation + update cycles.
    net.world.run_until(SimTime(2200));
    let r0: &PimRouter = net.world.node(NodeIdx(0));
    let r = r0
        .rib()
        .route(router_addr(NodeId(1)))
        .expect("must reroute the long way");
    assert_eq!(r.metric, 4, "0→4→3→2→1");
    // And the reverse direction too.
    let r1: &PimRouter = net.world.node(NodeIdx(1));
    assert_eq!(
        r1.rib()
            .route(router_addr(NodeId(0)))
            .expect("route")
            .metric,
        4
    );
}

#[test]
fn link_state_reconverges_after_failure() {
    let mut g = Graph::with_nodes(5);
    for i in 0..5u32 {
        g.add_edge(NodeId(i), NodeId((i + 1) % 5), 1);
    }
    let mut net = build_net(
        &g,
        Group::test(1),
        &[NodeId(0)],
        &[],
        Substrate::LinkState,
        PimConfig::default(),
        2,
    );
    net.world.run_until(SimTime(500));
    net.world
        .at(SimTime(500), |w| w.set_link_up(netsim::LinkId(0), false));
    // LS detection: neighbor holdtime (35) + LSA flood + Dijkstra.
    net.world.run_until(SimTime(1200));
    let r0: &PimRouter = net.world.node(NodeIdx(0));
    assert_eq!(
        r0.rib()
            .route(router_addr(NodeId(1)))
            .expect("rerouted")
            .metric,
        4
    );
}

/// Cross-validate the oracle itself: its metrics equal all-pairs
/// shortest-path distances on random graphs.
#[test]
fn oracle_metrics_match_all_pairs() {
    for seed in [5u64, 9] {
        let g = random_graph(seed, 20);
        let topo = Topology::from_graph(&g);
        let ap = AllPairs::new(&g);
        let oracles = OracleRib::for_all(&g, &topo);
        for a in g.nodes() {
            for b in g.nodes() {
                if a == b {
                    continue;
                }
                assert_eq!(
                    oracles[a.index()]
                        .route(router_addr(b))
                        .expect("connected")
                        .metric as u64,
                    ap.dist(a, b).expect("connected"),
                    "{a:?}→{b:?}"
                );
            }
        }
    }
}
