//! Quiescence regression: the event loop must do work proportional to
//! *state churn*, not to simulated wall-clock (the paper's §4 scaling
//! argument). The seed simulator polled every node every 2 ticks, so an
//! idle network of N nodes burned N·T/2 timer events over T ticks; with
//! deadline-driven wakeups an idle converged network only wakes for its
//! periodic soft-state refreshes (PIM queries every 30, join/prune and
//! RP-reachability refreshes every 60, IGMP queries every 125 ticks).

use graph::gen::{random_connected, RandomGraphParams};
use graph::NodeId;
use igmp::HostNode;
use integration_tests::{build_net, join_at, Substrate};
use netsim::{host_addr, Duration, SimTime, World};
use pim::PimConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wire::Group;

/// An idle, converged PIM internet (routers + queriers + member-less
/// hosts) must dispatch far fewer timer events than the seed's fixed
/// 2-tick heartbeat — and its event total must be dominated by the known
/// periodic refreshes, not by per-node polling.
#[test]
fn idle_converged_network_is_quiescent() {
    let mut rng = StdRng::seed_from_u64(9);
    let g = random_connected(
        &RandomGraphParams {
            nodes: 16,
            avg_degree: 3.0,
            delay_range: (1, 4),
        },
        &mut rng,
    );
    let host_routers = [NodeId(2), NodeId(5), NodeId(11), NodeId(14)];
    let mut net = build_net(
        &g,
        Group::test(1),
        &[NodeId(0)],
        &host_routers,
        Substrate::Oracle,
        PimConfig::default(),
        9,
    );
    // No joins, no senders: after neighbor discovery settles this network
    // carries only periodic soft-state refreshes.
    net.world.run_until(SimTime(400));
    let timers0 = net.world.counters().timers_fired();
    let events0 = net.world.counters().events_dispatched();

    const WINDOW: u64 = 2_000;
    net.world.run_until(SimTime(400 + WINDOW));
    let timers = net.world.counters().timers_fired() - timers0;
    let events = net.world.counters().events_dispatched() - events0;

    // 16 routers + 4 hosts under the seed's 2-tick poll.
    let nodes = 16 + host_routers.len() as u64;
    let heartbeat_timers = nodes * WINDOW / 2;
    println!(
        "idle window of {WINDOW} ticks: {timers} timer wakeups, {events} events \
         (2-tick heartbeat would be {heartbeat_timers} wakeups)"
    );
    assert!(
        timers * 5 < heartbeat_timers,
        "idle network fired {timers} timers over {WINDOW} ticks; \
         the 2-tick heartbeat would fire {heartbeat_timers} — wakeups must \
         be deadline-driven, not polled"
    );

    // The wakeups that do happen are the known refresh clocks: per router
    // one wakeup per due deadline — queries every 30, refresh/RP clocks
    // every 60, IGMP queries every 125 on the 4 host LANs. Allow 2× slack
    // for deadline coalescing and neighbor-expiry checks.
    let refreshes = 16 * (WINDOW / 30 + 2 * (WINDOW / 60)) + 4 * (WINDOW / 125);
    assert!(
        timers <= 2 * refreshes,
        "idle timer count {timers} exceeds O(state refreshes) bound {refreshes}×2"
    );
    // Dispatched events = timer wakeups + the control packets those
    // refreshes put on the wire; they must scale together.
    assert!(
        events < 20 * timers,
        "events {events} should be a small multiple of wakeups {timers}"
    );
}

/// Hosts with no group membership have no soft state to refresh at all:
/// a world of lone hosts must dispatch *zero* events after start.
#[test]
fn member_less_hosts_schedule_nothing() {
    let mut world = World::new(7);
    let a = world.add_node(Box::new(HostNode::new(host_addr(NodeId(0), 0))));
    let b = world.add_node(Box::new(HostNode::new(host_addr(NodeId(1), 0))));
    world.add_lan(&[a, b], Duration(1));
    world.run_until(SimTime(10_000));
    assert_eq!(
        world.counters().events_dispatched(),
        0,
        "idle hosts must not poll"
    );
}

/// Once members exist, events grow with the membership's refresh state —
/// but an idle member still costs only its periodic refreshes, far below
/// the heartbeat. (Guards against quiescence being achieved by simply
/// never scheduling protocol work.)
#[test]
fn joined_member_still_refreshes() {
    let g = integration_tests::diamond();
    let mut net = build_net(
        &g,
        Group::test(1),
        &[NodeId(2)],
        &[NodeId(0)],
        Substrate::Oracle,
        PimConfig::default(),
        5,
    );
    let (receiver, _) = net.hosts[0];
    join_at(&mut net.world, receiver, Group::test(1), 100);
    net.world.run_until(SimTime(600));
    let timers0 = net.world.counters().timers_fired();
    net.world.run_until(SimTime(2600));
    let timers = net.world.counters().timers_fired() - timers0;
    // The joined branch keeps refreshing join/prune state upstream: the
    // window must contain refresh wakeups (2000/60 ≈ 33 per router on the
    // tree) — quiescence must not mean "nothing ever fires".
    assert!(
        timers > 2_000 / 60,
        "a joined member must keep refreshing soft state (saw {timers} wakeups)"
    );
    let heartbeat = 5 * 2_000 / 2;
    assert!(
        (timers as u64) * 5 < heartbeat,
        "even with a member, wakeups ({timers}) stay far below the heartbeat ({heartbeat})"
    );
}
