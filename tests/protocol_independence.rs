//! §2 "Routing Protocol Independent": the identical PIM scenario over
//! oracle, distance-vector, and link-state unicast substrates must build
//! the same trees and deliver the same packets — on hand-built and on
//! random topologies.

use graph::gen::{random_connected, RandomGraphParams};
use graph::NodeId;
use integration_tests::{build_net, diamond, join_at, send_at, seqs, Substrate};
use netsim::{IfaceId, NodeIdx, SimTime};
use pim::{PimConfig, PimRouter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wire::Group;

fn group() -> Group {
    Group::test(1)
}

/// Run the diamond scenario; return (delivered seqs, (*,G) iif at DR,
/// (S,G) iif at DR).
fn run_diamond(sub: Substrate) -> (Vec<u64>, Option<IfaceId>, Option<IfaceId>) {
    let g = diamond();
    let mut net = build_net(
        &g,
        group(),
        &[NodeId(2)],
        &[NodeId(0), NodeId(3)],
        sub,
        PimConfig::default(),
        9,
    );
    let (receiver, _) = net.hosts[0];
    let (sender, s_addr) = net.hosts[1];
    join_at(&mut net.world, receiver, group(), 400);
    send_at(&mut net.world, sender, group(), 800, 15, 30);
    net.world.run_until(SimTime(2200));

    let got = seqs(&net.world, receiver, s_addr, group());
    let r0: &PimRouter = net.world.node(NodeIdx(0));
    let gs = r0.engine().group_state(group()).expect("state at DR");
    (
        got,
        gs.star.as_ref().and_then(|s| s.iif),
        gs.sources.get(&s_addr).and_then(|e| e.iif),
    )
}

#[test]
fn identical_trees_across_substrates() {
    let oracle = run_diamond(Substrate::Oracle);
    let dv = run_diamond(Substrate::DistanceVector);
    let ls = run_diamond(Substrate::LinkState);
    assert_eq!(oracle.0, (0..15).collect::<Vec<u64>>(), "oracle delivery");
    assert_eq!(dv.0, oracle.0, "distance-vector delivery differs");
    assert_eq!(ls.0, oracle.0, "link-state delivery differs");
    assert_eq!(dv.1, oracle.1, "(*,G) iif differs under DV");
    assert_eq!(ls.1, oracle.1, "(*,G) iif differs under LS");
    assert_eq!(dv.2, oracle.2, "(S,G) iif differs under DV");
    assert_eq!(ls.2, oracle.2, "(S,G) iif differs under LS");
}

/// On random topologies, all three substrates must deliver everything
/// once converged (tree shapes may differ where equal-cost paths exist —
/// tie-breaks are engine-specific — but correctness may not).
#[test]
fn random_topologies_deliver_under_all_substrates() {
    for seed in [3u64, 11, 29] {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random_connected(
            &RandomGraphParams {
                nodes: 16,
                avg_degree: 3.0,
                delay_range: (1, 4),
            },
            &mut rng,
        );
        let members = [NodeId(1), NodeId(7), NodeId(13)];
        let sender_node = NodeId(4);
        let mut host_routers = members.to_vec();
        host_routers.push(sender_node);

        for sub in [
            Substrate::Oracle,
            Substrate::DistanceVector,
            Substrate::LinkState,
        ] {
            let mut net = build_net(
                &g,
                group(),
                &[NodeId(0)],
                &host_routers,
                sub,
                PimConfig::default(),
                seed,
            );
            let member_hosts: Vec<_> = net.hosts[..3].to_vec();
            let (sender, s_addr) = net.hosts[3];
            for (i, &(h, _)) in member_hosts.iter().enumerate() {
                join_at(&mut net.world, h, group(), 400 + i as u64 * 7);
            }
            send_at(&mut net.world, sender, group(), 900, 10, 40);
            net.world.run_until(SimTime(2600));
            for &(h, _) in &member_hosts {
                let got = seqs(&net.world, h, s_addr, group());
                assert_eq!(
                    got,
                    (0..10).collect::<Vec<u64>>(),
                    "seed {seed} {sub:?}: a member missed packets"
                );
            }
        }
    }
}

/// The paper's protocol-independence is a *trait* boundary: swapping the
/// substrate must not change multicast state invariants. Verify the RPF
/// coherence invariant — every router's (*,G) iif equals its unicast RPF
/// interface toward the RP — under both live protocols.
#[test]
fn star_iif_matches_rpf_under_live_routing() {
    for sub in [Substrate::DistanceVector, Substrate::LinkState] {
        let g = diamond();
        let mut net = build_net(
            &g,
            group(),
            &[NodeId(2)],
            &[NodeId(0)],
            sub,
            PimConfig::default(),
            5,
        );
        let (receiver, _) = net.hosts[0];
        join_at(&mut net.world, receiver, group(), 400);
        net.world.run_until(SimTime(1200));
        for i in 0..4usize {
            let r: &PimRouter = net.world.node(NodeIdx(i));
            let Some(gs) = r.engine().group_state(group()) else {
                continue;
            };
            let Some(star) = gs.star.as_ref() else {
                continue;
            };
            if star.iif.is_none() {
                continue; // the RP
            }
            assert_eq!(
                star.iif,
                r.rib().rpf_iface(star.key),
                "{sub:?}: router {i}'s (*,G) iif must be its RPF toward the RP"
            );
        }
    }
}
