//! End-to-end scenarios for the two baseline protocols over the
//! simulator, plus head-to-head behavior contrasts with PIM (the paper's
//! §1 comparisons, as executable assertions).

use cbt::{CbtConfig, CbtEngine, CbtRouter};
use dvmrp::{DvmrpConfig, DvmrpEngine, DvmrpRouter};
use graph::{Graph, NodeId};
use igmp::HostNode;
use netsim::{host_addr, router_addr, Duration, LinkId, NodeIdx, SimTime, Topology};
use unicast::OracleRib;
use wire::Group;

fn group() -> Group {
    Group::test(1)
}

/// A 6-node line with a stub branch:
/// `0 - 1 - 2 - 3 - 4` and `2 - 5` (5 is a leaf with no members).
fn line_with_stub() -> Graph {
    let mut g = Graph::with_nodes(6);
    g.add_edge(NodeId(0), NodeId(1), 1);
    g.add_edge(NodeId(1), NodeId(2), 1);
    g.add_edge(NodeId(2), NodeId(3), 1);
    g.add_edge(NodeId(3), NodeId(4), 1);
    g.add_edge(NodeId(2), NodeId(5), 1);
    g
}

fn oracle_ribs(g: &Graph, topo: &Topology, host_routers: &[NodeId]) -> Vec<OracleRib> {
    let mut ribs = OracleRib::for_all(g, topo);
    for &n in host_routers {
        let h = host_addr(n, 0);
        for (i, rib) in ribs.iter_mut().enumerate() {
            if i != n.index() {
                rib.alias_host(h, router_addr(n));
            }
        }
    }
    ribs
}

// ---------------------------------------------------------------------
// DVMRP end-to-end
// ---------------------------------------------------------------------

struct DvmrpNet {
    world: netsim::World,
    hosts: Vec<(NodeIdx, wire::Addr)>,
}

fn build_dvmrp(g: &Graph, host_routers: &[NodeId], seed: u64) -> DvmrpNet {
    let topo = Topology::from_graph(g);
    let mut ribs = oracle_ribs(g, &topo, host_routers).into_iter();
    let (mut world, _) = topo.build_world(g, seed, |plan| {
        let e = DvmrpEngine::new(plan.addr, plan.ifaces.len(), DvmrpConfig::default());
        Box::new(DvmrpRouter::new(e, Box::new(ribs.next().expect("rib"))))
    });
    let mut hosts = Vec::new();
    for &n in host_routers {
        let ha = host_addr(n, 0);
        let hi = world.add_node(Box::new(HostNode::new(ha)));
        let (_l, ifs) = world.add_lan(&[NodeIdx(n.index()), hi], Duration(1));
        world
            .node_mut::<DvmrpRouter>(NodeIdx(n.index()))
            .attach_host_lan(ifs[0], &[ha]);
        hosts.push((hi, ha));
    }
    DvmrpNet { world, hosts }
}

#[test]
fn dvmrp_floods_prunes_and_grafts() {
    let g = line_with_stub();
    let mut net = build_dvmrp(&g, &[NodeId(0), NodeId(4), NodeId(5)], 8);
    let (member, _) = net.hosts[0]; // behind node 0
    let (sender, s_addr) = net.hosts[1]; // behind node 4
    let (late_member, _) = net.hosts[2]; // behind node 5, joins later

    // Member joins; sender streams 50 packets.
    net.world.at(SimTime(20), move |w| {
        w.call_node(member, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host")
                .join(ctx, group());
        });
    });
    for k in 0..50u64 {
        net.world.at(SimTime(100 + k * 30), move |w| {
            w.call_node(sender, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .send_data(ctx, group());
            });
        });
    }
    // The stub member joins mid-stream: its branch was pruned; the graft
    // must restore delivery without waiting for the prune to time out.
    net.world.at(SimTime(800), move |w| {
        w.call_node(late_member, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host")
                .join(ctx, group());
        });
    });
    net.world.run_until(SimTime(2200));

    let h0: &HostNode = net.world.node(member);
    assert_eq!(
        h0.seqs_from(s_addr, group()),
        (0..50).collect::<Vec<u64>>(),
        "the dense-mode member must receive everything"
    );
    let h5: &HostNode = net.world.node(late_member);
    let got5 = h5.seqs_from(s_addr, group());
    assert!(!got5.is_empty(), "the grafted member must receive");
    // Graft latency: the first packet after joining at 800 is seq ~24
    // (sent at 820); allow the graft round-trip.
    let first = got5[0];
    assert!(
        (23..=27).contains(&first),
        "graft must restore delivery promptly, first seq was {first}"
    );
    assert_eq!(
        *got5.last().expect("nonempty"),
        49,
        "delivery continues after the graft"
    );
    // The stub branch carried data only after the graft (plus initial
    // flood + grow-backs): the flood epoch behavior.
    let c = net.world.counters();
    let stub = c.link(LinkId(4)); // edge 2-5
    assert!(stub.data_pkts > 0);
}

#[test]
fn dvmrp_truncated_broadcast_prunes_back() {
    // No members at all: the first packets flood, prunes converge, and
    // data stops flowing network-wide until the prune lifetime lapses.
    let g = line_with_stub();
    let mut net = build_dvmrp(&g, &[NodeId(4)], 9);
    let (sender, _) = net.hosts[0];
    for k in 0..40u64 {
        net.world.at(SimTime(100 + k * 10), move |w| {
            w.call_node(sender, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .send_data(ctx, group());
            });
        });
    }
    // Snapshot after the first flood epoch, then across the prune window
    // and the grow-back.
    net.world.run_until(SimTime(300));
    let mid = net.world.counters().total_data_pkts();
    assert!(mid > 0, "initial truncated broadcast must have flooded");
    net.world.run_until(SimTime(500));
    let late = net.world.counters().total_data_pkts();
    let increment = late - mid;
    // 20 packets are sent in [300,500). Unpruned they would flood every
    // link (5 transits each = 100). Pruning must suppress most of that —
    // but NOT all of it: the prune lifetime (200t) lapses mid-window and
    // the branches "grow back" for one more flood epoch before being
    // pruned again (§1.1: "pruned branches will grow back after a
    // time-out period ... will again be pruned"). This periodic
    // re-broadcast is exactly the overhead the paper criticizes.
    assert!(
        increment < 60,
        "pruning must suppress most flooding (saw {increment} of ~100 unpruned transits)"
    );
    assert!(
        increment > 0,
        "the prune-timeout grow-back must re-flood at least once"
    );
}

// ---------------------------------------------------------------------
// CBT end-to-end
// ---------------------------------------------------------------------

struct CbtNet {
    world: netsim::World,
    hosts: Vec<(NodeIdx, wire::Addr)>,
}

fn build_cbt(g: &Graph, core: NodeId, host_routers: &[NodeId], seed: u64) -> CbtNet {
    let topo = Topology::from_graph(g);
    let mut ribs = oracle_ribs(g, &topo, host_routers).into_iter();
    let core_addr = router_addr(core);
    let (mut world, _) = topo.build_world(g, seed, |plan| {
        let e = CbtEngine::new(plan.addr, CbtConfig::default());
        let mut r = CbtRouter::new(e, Box::new(ribs.next().expect("rib")));
        r.engine_mut().set_core(group(), core_addr);
        Box::new(r)
    });
    let mut hosts = Vec::new();
    for &n in host_routers {
        let ha = host_addr(n, 0);
        let hi = world.add_node(Box::new(HostNode::new(ha)));
        let (_l, ifs) = world.add_lan(&[NodeIdx(n.index()), hi], Duration(1));
        world
            .node_mut::<CbtRouter>(NodeIdx(n.index()))
            .attach_host_lan(ifs[0], &[ha]);
        hosts.push((hi, ha));
    }
    CbtNet { world, hosts }
}

#[test]
fn cbt_bidirectional_tree_delivers_member_to_member() {
    let g = line_with_stub();
    // Core at node 2 (the junction); members behind 0, 4, 5.
    let mut net = build_cbt(&g, NodeId(2), &[NodeId(0), NodeId(4), NodeId(5)], 4);
    let member_hosts: Vec<_> = net.hosts.clone();
    for (i, &(h, _)) in member_hosts.iter().enumerate() {
        net.world.at(SimTime(20 + i as u64 * 5), move |w| {
            w.call_node(h, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .join(ctx, group());
            });
        });
    }
    // Member behind node 4 sends: the packet travels UP toward the core
    // and down every other branch (bidirectional forwarding, no RP
    // detour for on-tree senders).
    let (sender, s_addr) = member_hosts[1];
    for k in 0..30u64 {
        net.world.at(SimTime(200 + k * 25), move |w| {
            w.call_node(sender, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .send_data(ctx, group());
            });
        });
    }
    net.world.run_until(SimTime(1600));
    for (i, &(h, _)) in member_hosts.iter().enumerate() {
        if i == 1 {
            continue;
        }
        let host: &HostNode = net.world.node(h);
        assert_eq!(
            host.seqs_from(s_addr, group()),
            (0..30).collect::<Vec<u64>>(),
            "member {i} must receive the full stream"
        );
    }
}

#[test]
fn cbt_off_tree_sender_encapsulates_via_core() {
    let g = line_with_stub();
    let mut net = build_cbt(&g, NodeId(2), &[NodeId(0), NodeId(4)], 4);
    let (member, _) = net.hosts[0];
    let (sender, s_addr) = net.hosts[1];
    // Only node 0's host joins; node 4's host is a non-member sender.
    net.world.at(SimTime(20), move |w| {
        w.call_node(member, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host")
                .join(ctx, group());
        });
    });
    for k in 0..20u64 {
        net.world.at(SimTime(200 + k * 25), move |w| {
            w.call_node(sender, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .send_data(ctx, group());
            });
        });
    }
    net.world.run_until(SimTime(1200));
    let host: &HostNode = net.world.node(member);
    assert_eq!(
        host.seqs_from(s_addr, group()),
        (0..20).collect::<Vec<u64>>(),
        "non-member sender's packets must arrive via core encapsulation"
    );
}

#[test]
fn cbt_subtree_recovers_after_parent_failure() {
    // 0 - 1 - 2(core), backup 0 - 3 - 2. Member behind 0; kill link 0-1.
    let mut g = Graph::with_nodes(4);
    g.add_edge(NodeId(0), NodeId(1), 1); // e0 primary
    g.add_edge(NodeId(1), NodeId(2), 1); // e1
    g.add_edge(NodeId(0), NodeId(3), 2); // e2 backup
    g.add_edge(NodeId(3), NodeId(2), 2); // e3
    let mut net = build_cbt(&g, NodeId(2), &[NodeId(0), NodeId(2)], 6);
    let (member, _) = net.hosts[0];
    let (sender, s_addr) = net.hosts[1];
    net.world.at(SimTime(20), move |w| {
        w.call_node(member, |n, ctx| {
            n.as_any_mut()
                .downcast_mut::<HostNode>()
                .expect("host")
                .join(ctx, group());
        });
    });
    for k in 0..60u64 {
        net.world.at(SimTime(100 + k * 30), move |w| {
            w.call_node(sender, |n, ctx| {
                n.as_any_mut()
                    .downcast_mut::<HostNode>()
                    .expect("host")
                    .send_data(ctx, group());
            });
        });
    }
    net.world
        .at(SimTime(600), |w| w.set_link_up(LinkId(0), false));
    net.world.run_until(SimTime(3000));
    let host: &HostNode = net.world.node(member);
    let got = host.seqs_from(s_addr, group());
    // Note: with the static oracle rib, CBT's rejoin keeps using the dead
    // next hop until the echo timeout fires; the oracle still routes via
    // the dead link, so recovery requires the join retransmission to pick
    // the (unchanged) route... this test pins the *detection* behavior:
    // echo timeout tears the tree down and the child retries joins.
    // Delivery through the backup path requires adaptive unicast routing,
    // which the oracle cannot provide — so we only assert pre-failure
    // delivery and teardown here.
    let early: Vec<u64> = got.iter().copied().filter(|&s| s < 15).collect();
    assert_eq!(early, (0..15).collect::<Vec<u64>>(), "pre-failure stream");
    let r0: &CbtRouter = net.world.node(NodeIdx(0));
    let on_tree = r0.engine().tree(group()).is_some_and(|t| t.on_tree);
    assert!(
        !on_tree,
        "after losing its parent, the child must have detected the failure"
    );
}
