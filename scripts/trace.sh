#!/usr/bin/env sh
# Run one scenario end-to-end and pretty-print its telemetry trace:
# packet transmissions (decoded via describe_packet) merged with the
# structured JSONL event stream, plus state snapshots and convergence
# metrics. Pass --jsonl for the raw machine-readable stream.
#
# Usage: ./scripts/trace.sh [TOPOLOGY] [PROTOCOL] [SEED] [--jsonl]
#   e.g. ./scripts/trace.sh diamond pim 7
#        ./scripts/trace.sh mesh cbt 3 --jsonl > trace.jsonl
set -eu

cd "$(dirname "$0")/.."

cargo run -q --release --offline -p scenario --bin trace -- "$@"
