#!/usr/bin/env sh
# Run one scenario end-to-end and pretty-print its telemetry trace:
# packet transmissions (decoded via describe_packet) merged with the
# structured JSONL event stream, plus state snapshots and convergence
# metrics. Pass --jsonl for the raw machine-readable stream.
#
# Usage: ./scripts/trace.sh [TOPOLOGY] [PROTOCOL] [SEED] [--jsonl]
#        ./scripts/trace.sh why ARTIFACT [--threads N]
#   e.g. ./scripts/trace.sh diamond pim 7
#        ./scripts/trace.sh mesh cbt 3 --jsonl > trace.jsonl
#        ./scripts/trace.sh why corpus/orphaned-upstream.replay
#
# `why` replays a committed scenario-replay-v1 artifact with the causal
# index attached and prints the backward slice behind each violation,
# per-member critical paths, and fault blast radii. The output carries
# no thread count, so it diffs byte-identically across --threads.
set -eu

cd "$(dirname "$0")/.."

cargo run -q --release --offline -p scenario --bin trace -- "$@"
