#!/usr/bin/env sh
# Benchmark runner.
#
#   ./scripts/bench.sh smoke   # tiny sweeps, JSON under target/bench/ (CI gate)
#   ./scripts/bench.sh full    # paper-scale sweeps, writes BENCH_fig2.json and
#                              # BENCH_sim.json at the repo root (committed)
#
# Smoke mode proves every bench binary runs end to end and emits valid
# JSON without touching the committed BENCH_* records; full mode is how
# those records are regenerated.
set -eu

cd "$(dirname "$0")/.."
mode="${1:-smoke}"

cargo build --release --offline -p bench >/dev/null

case "$mode" in
smoke)
    out=target/bench
    mkdir -p "$out"
    echo "== fig2a --smoke"
    ./target/release/fig2a --smoke --json "$out/fig2a.json" >/dev/null
    echo "== fig2b --smoke"
    ./target/release/fig2b --smoke --json "$out/fig2b.json" >/dev/null
    echo "== simbench --smoke"
    # --threads 4 forces the region auto-partitioner live; surface its
    # greppable region-count line so the smoke log shows the parallel
    # core actually engaged.
    ./target/release/simbench --smoke --congestion --threads 4 --json "$out/sim.json" |
        grep '^auto_partition '
    # Each record must at least parse as a JSON object with a wall time.
    for f in "$out"/fig2a.json "$out"/fig2b.json "$out"/sim.json; do
        grep -q '"wall_ms"' "$f" || { echo "missing wall_ms in $f"; exit 1; }
    done
    grep -q '"congestion_sweep"' "$out/sim.json" ||
        { echo "missing congestion_sweep in $out/sim.json"; exit 1; }
    echo "bench smoke: OK ($out/*.json)"
    ;;
full)
    out=target/bench
    mkdir -p "$out"
    echo "== fig2a (full)"
    ./target/release/fig2a --json "$out/fig2a.json"
    echo "== fig2b (full)"
    ./target/release/fig2b --json "$out/fig2b.json"
    echo "== simbench (full)"
    # Single-threaded so the committed wall clocks are comparable across
    # regenerations on any host (results are thread-invariant anyway; the
    # parallel core is exercised and gated by check.sh at --threads 4).
    ./target/release/simbench --congestion --json BENCH_sim.json
    # Compose the committed fig2 record from the two sweep records.
    {
        printf '{\n"fig2a": '
        cat "$out/fig2a.json"
        printf ',\n"fig2b": '
        cat "$out/fig2b.json"
        printf '}\n'
    } >BENCH_fig2.json
    echo "bench full: wrote BENCH_fig2.json and BENCH_sim.json"
    ;;
*)
    echo "usage: $0 [smoke|full]" >&2
    exit 2
    ;;
esac
