#!/usr/bin/env sh
# Fixed-budget fault-schedule exploration: 300 seeded schedules per
# topology zoo rotation, all three protocols each, oracle-checked.
# Exits nonzero and prints a scenario-replay-v1 artifact (plus a
# trace.sh repro hint) on any violation. The committed regression
# corpus is replayed byte-identically first; set CORPUS= to skip it.
# Run from the repository root: ./scripts/explore.sh
set -eu

cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-300}"
START="${START:-0}"
CORPUS="${CORPUS-corpus}"

if [ -n "$CORPUS" ]; then
    set -- "$SEEDS" "$START" --corpus "$CORPUS"
else
    set -- "$SEEDS" "$START"
fi

cargo run --release --offline -q -p scenario --bin explore -- "$@"
