#!/usr/bin/env sh
# Fixed-budget fault-schedule exploration: 300 seeded schedules per
# topology zoo rotation, all three protocols each, oracle-checked.
# Exits nonzero and prints a scenario-replay-v1 artifact on any
# violation. Run from the repository root: ./scripts/explore.sh
set -eu

cd "$(dirname "$0")/.."

SEEDS="${SEEDS:-300}"
START="${START:-0}"

cargo run --release --offline -q -p scenario --bin explore -- "$SEEDS" "$START"
