#!/usr/bin/env sh
# Deterministic fuzz harness driver.
#   ./scripts/fuzz.sh smoke   - tier-1 gate: 12k wire frames + 2k engine
#                               frames per protocol, a few seconds
#   ./scripts/fuzz.sh full    - CHAOS campaign scale (200k wire frames,
#                               10k engine frames per protocol)
# Extra args (e.g. --seed N) are passed through to the fuzz binary.
set -eu

cd "$(dirname "$0")/.."

MODE="${1:-smoke}"
shift 2>/dev/null || true

cargo run --release --offline -q -p scenario --bin fuzz -- "$MODE" "$@"
