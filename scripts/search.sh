#!/usr/bin/env sh
# Coverage-guided fault-schedule search driver.
#
#   ./scripts/search.sh smoke            # tier-1 gate: corpus replay,
#                                        # shrinker self-test, bounded search
#   ./scripts/search.sh compare          # random vs guided on identical
#                                        # budgets (the EXPERIMENTS.md table)
#   ./scripts/search.sh full             # campaign; shrunk artifacts under
#                                        # target/search/ on any violation
#   ./scripts/search.sh rebuild-corpus   # regenerate corpus/*.replay pins
#
# Extra flags pass straight through, e.g.:
#   ./scripts/search.sh compare --budget 96 --seed 1994 --threads 4
# Output (and any written artifact) is bit-identical at every --threads.
set -eu

cd "$(dirname "$0")/.."

MODE="${1:-smoke}"
[ "$#" -gt 0 ] && shift

cargo run --release --offline -q -p scenario --bin search -- "$MODE" "$@"
