#!/usr/bin/env sh
# Tier-1 gate: everything a PR must keep green.
# Run from the repository root: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release"
cargo build --release --offline

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test -q"
cargo test -q --offline

echo "== cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline --quiet

echo "== determinism: --threads 1 vs --threads 4"
# The parallel-core contract, checked end to end on real binaries: the
# sweep output and the reception fingerprint must be byte-identical at
# any thread count.
mkdir -p target/check
./target/release/fig2a --trials 4 --threads 1 >target/check/det-1t.txt
./target/release/fig2a --trials 4 --threads 4 >target/check/det-4t.txt
diff target/check/det-1t.txt target/check/det-4t.txt ||
    { echo "fig2a diverged across thread counts"; exit 1; }
# --congestion folds the bounded-capacity sweep's reception fingerprints
# into the same diff: congestion must not cost determinism.
./target/release/simbench --smoke --congestion --threads 1 | grep fingerprint >target/check/fp-1t.txt
./target/release/simbench --smoke --congestion --threads 4 | grep fingerprint >target/check/fp-4t.txt
diff target/check/fp-1t.txt target/check/fp-4t.txt ||
    { echo "simbench fingerprint diverged across thread counts"; exit 1; }
# Causal provenance is part of the determinism contract too: the full
# `trace why` report (backward slices, critical paths, blast radii,
# causal-index fingerprint) on every corpus pin must be non-empty and
# byte-identical at any thread count.
for pin in corpus/*.replay; do
    base="target/check/why-$(basename "$pin" .replay)"
    ./target/release/trace why "$pin" --threads 1 >"$base-1t.txt"
    ./target/release/trace why "$pin" --threads 4 >"$base-4t.txt"
    [ -s "$base-1t.txt" ] || { echo "trace why $pin produced no output"; exit 1; }
    cmp "$base-1t.txt" "$base-4t.txt" ||
        { echo "trace why $pin diverged across thread counts"; exit 1; }
done
echo "determinism: OK"

echo "== hierarchical smoke (500 routers, 10^4 aggregate members)"
# Scale gate: all three protocols over the wide-area backbone+domains
# topology with aggregate member populations, full oracle battery
# (delivery, structure, site-scaled state bound), thread-invariant.
./target/release/hier_smoke --threads 1 | sed 's/threads=[0-9]*//' >target/check/hier-1t.txt
./target/release/hier_smoke --threads 4 | sed 's/threads=[0-9]*//' >target/check/hier-4t.txt
diff target/check/hier-1t.txt target/check/hier-4t.txt ||
    { echo "hier_smoke diverged across thread counts"; exit 1; }
! grep -q FAIL target/check/hier-1t.txt ||
    { echo "hier_smoke oracle violations"; exit 1; }
grep -q PASS target/check/hier-1t.txt ||
    { echo "hier_smoke produced no PASS lines"; exit 1; }
echo "hier smoke: OK"

echo "== overload smoke (flash-crowd + RP-overload under capped links)"
# Congestion gate: both overload workloads against all three protocols
# with a capped RP-side link, full oracle battery (bounded queues, no
# control-plane starvation, post-heal congestion recovery), and the
# printed drop/mark/peak counters byte-identical across thread counts.
./target/release/overload_smoke --threads 1 | sed 's/threads=[0-9]*//' >target/check/overload-1t.txt
./target/release/overload_smoke --threads 4 | sed 's/threads=[0-9]*//' >target/check/overload-4t.txt
diff target/check/overload-1t.txt target/check/overload-4t.txt ||
    { echo "overload_smoke diverged across thread counts"; exit 1; }
! grep -q FAIL target/check/overload-1t.txt ||
    { echo "overload_smoke oracle violations"; exit 1; }
grep -q PASS target/check/overload-1t.txt ||
    { echo "overload_smoke produced no PASS lines"; exit 1; }
echo "overload smoke: OK"

echo "== bench smoke"
./scripts/bench.sh smoke

echo "== fuzz smoke"
./scripts/fuzz.sh smoke

echo "== search smoke"
# Coverage-guided search gate: replay the committed regression corpus
# byte-identically, self-test the shrinker (determinism + 1-minimality)
# on a known violating fixture, and run a bounded guided search.
./scripts/search.sh smoke

echo "tier-1: OK"
