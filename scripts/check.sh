#!/usr/bin/env sh
# Tier-1 gate: everything a PR must keep green.
# Run from the repository root: ./scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo build --release"
cargo build --release --offline

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test -q"
cargo test -q --offline

echo "== cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline --quiet

echo "== bench smoke"
./scripts/bench.sh smoke

echo "== fuzz smoke"
./scripts/fuzz.sh smoke

echo "tier-1: OK"
